"""Tests for the fault model and Section 3.4's coverage scenarios."""

import pytest

from repro.isa import int_reg
from repro.redundancy import (
    DIE_IRB_SPHERE,
    DIE_SPHERE,
    EXEC_DUP,
    EXEC_PRIMARY,
    FORWARD_BOTH,
    FORWARD_SINGLE,
    Fault,
    FaultInjector,
    corrupt_value,
)
from repro.simulation import simulate

from helpers import addi, straightline


def chain_trace(n=24):
    return straightline([addi(int_reg(1 + (i % 8)), 0, i) for i in range(n)])


class TestCorruptValue:
    def test_int_flip(self):
        assert corrupt_value(100) != 100

    def test_float_perturbed(self):
        assert corrupt_value(1.5) != 1.5
        assert corrupt_value(0.0) != 0.0

    def test_none_becomes_detectable(self):
        assert corrupt_value(None) is not None

    def test_bool(self):
        assert corrupt_value(True) is False

    def test_deterministic(self):
        assert corrupt_value(42) == corrupt_value(42)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="cosmic")

    def test_known_kinds_accepted(self):
        for kind in (EXEC_PRIMARY, EXEC_DUP, FORWARD_SINGLE, FORWARD_BOTH):
            Fault(kind=kind, seq=1)


class TestDetectionScenarios:
    @pytest.mark.parametrize("kind", [EXEC_PRIMARY, EXEC_DUP, FORWARD_SINGLE])
    def test_single_stream_faults_are_detected(self, kind):
        injector = FaultInjector([Fault(kind=kind, seq=12)])
        result = simulate(chain_trace(), "die", fault_injector=injector)
        assert injector.log.injected == 1
        assert result.stats.check_mismatches == 1
        assert result.stats.committed == 24

    def test_forward_both_escapes_the_pair_check(self):
        """Figure 6(c): the same bad value in both streams is invisible
        to the checker — the escape the paper concedes."""
        injector = FaultInjector([Fault(kind=FORWARD_BOTH, seq=12)])
        result = simulate(chain_trace(), "die", fault_injector=injector)
        assert injector.log.injected == 1
        assert result.stats.check_mismatches == 0

    def test_injection_happens_once_despite_rewind(self):
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=12)])
        result = simulate(chain_trace(), "die", fault_injector=injector)
        # The rewind re-executes seq 12; a transient must not recur.
        assert injector.log.injected == 1
        assert result.stats.recoveries == 1

    def test_multiple_faults_all_handled(self):
        faults = [Fault(kind=EXEC_PRIMARY, seq=s) for s in (6, 12, 18)]
        injector = FaultInjector(faults)
        result = simulate(chain_trace(), "die", fault_injector=injector)
        assert result.stats.check_mismatches == 3
        assert result.stats.committed == 24

    def test_sie_has_no_detection(self):
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=12)])
        result = simulate(chain_trace(), "sie", fault_injector=injector)
        assert injector.log.injected == 1
        assert result.stats.check_mismatches == 0  # silent corruption


class TestSphere:
    def test_die_sphere_contents(self):
        assert DIE_SPHERE.protects("functional_units")
        assert DIE_SPHERE.protects("rob")
        assert not DIE_SPHERE.protects("memory")
        assert not DIE_SPHERE.protects("branch_predictor")

    def test_irb_joins_the_sphere_without_ecc(self):
        assert "irb" not in DIE_SPHERE.inside
        assert DIE_IRB_SPHERE.protects("irb")

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            DIE_SPHERE.protects("flux_capacitor")


class TestLatentStrikes:
    """A strike whose value perturbation is an identity no-op flipped no
    bit: it must be accounted latent (undetectable by construction), not
    injected — the regression this class pins down."""

    @staticmethod
    def _opaque_inst(seq=0):
        from repro.core import DynInst
        from repro.isa import FUClass, Opcode, TraceInst

        trace = TraceInst(
            seq=seq, pc=0, opcode=Opcode.ADD, fu=FUClass.INT_ALU,
            dst=1, src1=None, src2=None, src1_val=None, src2_val=None,
            result="opaque", mem_addr=None, taken=False, next_pc=4,
        )
        return DynInst(trace)

    def test_identity_noop_counts_latent_not_injected(self):
        inst = self._opaque_inst()
        assert corrupt_value(inst.result) == inst.result  # unsupported type
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=0)])
        injector.on_complete(inst, cycle=5)
        assert inst.result == "opaque"
        assert injector.log.injected == 0
        assert injector.log.latent == 1

    def test_forward_both_noop_counted_once(self):
        injector = FaultInjector([Fault(kind=FORWARD_BOTH, seq=0)])
        primary = self._opaque_inst()
        duplicate = self._opaque_inst()
        duplicate.stream = 1
        injector.on_complete(primary, cycle=3)
        injector.on_complete(duplicate, cycle=4)
        assert injector.log.latent == 1
        assert injector.log.injected == 0

    def test_flippable_value_still_counts_injected(self):
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=12)])
        result = simulate(chain_trace(), "die", fault_injector=injector)
        assert injector.log.injected == 1
        assert injector.log.latent == 0
        assert result.stats.check_mismatches == 1

    def test_latent_outcome_reaches_telemetry(self):
        from repro.telemetry import FaultEvent, RecordingTracer

        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=0)])
        tracer = RecordingTracer()
        injector.tracer = tracer
        injector.on_complete(self._opaque_inst(), cycle=5)
        events = [e for e in tracer.events if isinstance(e, FaultEvent)]
        assert len(events) == 1
        assert events[0].outcome == "latent"
        assert events[0].cycle == 5
