"""Tests for the stride value predictor and the DIE-VP pipeline."""

import pytest

from repro.isa import Opcode, int_reg
from repro.redundancy import Fault, FaultInjector
from repro.redundancy.faults import EXEC_PRIMARY
from repro.reuse import StrideValuePredictor, VPConfig
from repro.simulation import simulate

from helpers import addi, assemble, straightline
from repro.workloads.executor import FunctionalExecutor

R1, R2, R3 = int_reg(1), int_reg(2), int_reg(3)


class TestStridePredictor:
    def test_constant_sequence_predicts_after_training(self):
        vp = StrideValuePredictor()
        for _ in range(4):
            vp.update(0x100, 42)
        assert vp.predict(0x100) == 42

    def test_stride_sequence_predicts_next(self):
        vp = StrideValuePredictor()
        for value in (10, 20, 30, 40):
            vp.update(0x100, value)
        assert vp.predict(0x100) == 50

    def test_cold_pc_predicts_nothing(self):
        vp = StrideValuePredictor()
        assert vp.predict(0x100) is None

    def test_unstable_sequence_stays_unconfident(self):
        vp = StrideValuePredictor()
        for value in (1, 5, 2, 9, 4, 13):
            vp.update(0x100, value)
        assert vp.predict(0x100) is None

    def test_confidence_resets_on_stride_change(self):
        vp = StrideValuePredictor()
        for value in (10, 20, 30, 40):
            vp.update(0x100, value)
        vp.update(0x100, 100)  # stride break
        assert vp.predict(0x100) is None

    def test_non_numeric_values_use_last_value(self):
        vp = StrideValuePredictor()
        for _ in range(4):
            vp.update(0x100, 2.5)
        assert vp.predict(0x100) == 2.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VPConfig(entries=100)
        with pytest.raises(ValueError):
            VPConfig(threshold=9)


class TestDIEVPPipeline:
    def _induction_trace(self, iterations=30):
        # acc += 3 every iteration: pure stride, ZERO reuse for an IRB.
        ops = [(Opcode.ADDI, R1, R1, None, 3)]
        return FunctionalExecutor(assemble(ops)).run(2 * iterations)

    def test_vp_serves_induction_where_irb_cannot(self):
        trace = self._induction_trace()
        irb = simulate(trace, "die-irb")
        vp = simulate(trace, "die-vp")
        # The ADDI's outcome strides by 3: VP verifies it, the IRB never.
        jump_only = sum(1 for i in trace if i.opcode is Opcode.JUMP)
        assert irb.stats.irb_reuse_hits <= jump_only
        assert vp.stats.irb_reuse_hits > jump_only

    def test_commits_everything(self, gzip_trace):
        result = simulate(gzip_trace, "die-vp")
        assert result.stats.committed == len(gzip_trace)
        assert result.stats.check_mismatches == 0

    def test_never_slower_than_die(self, gzip_trace):
        die = simulate(gzip_trace, "die").stats.cycles
        vp = simulate(gzip_trace, "die-vp").stats.cycles
        assert vp <= die * 1.01

    def test_bounded_by_sie(self, gzip_trace):
        sie = simulate(gzip_trace, "sie").ipc
        vp = simulate(gzip_trace, "die-vp").ipc
        assert vp <= sie * 1.001

    def test_faulted_primary_fails_verification_and_is_detected(self):
        trace = straightline(
            [addi(int_reg(1 + (i % 8)), 0, 5) for i in range(20)]
        )
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=10)])
        result = simulate(trace, "die-vp", fault_injector=injector)
        # The duplicate falls back to the ALUs and the checker catches
        # the divergence.
        assert result.stats.check_mismatches == 1
        assert result.stats.committed == 20

    def test_a6_experiment_renders(self):
        from repro.experiments import get_experiment

        result = get_experiment("A6").run(apps=("gzip",), n_insts=4000)
        assert "loss% VP" in result.render()
