"""Tests for the simlint static analyzer (tools/simlint).

Each rule gets one known-bad fixture (must fire) and one known-good
fixture (must stay silent), plus suppression, reporter, CLI and
self-check coverage.  Fixtures live under ``tests/fixtures/simlint``.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from tools.simlint import run_paths
from tools.simlint.cli import main as cli_main
from tools.simlint.engine import run_analysis
from tools.simlint.framework import all_rules, get_rule, parse_suppressions
from tools.simlint.reporters import render_json, render_sarif, render_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "simlint")
SRC = os.path.join(REPO_ROOT, "src", "repro")

RULE_IDS = (
    "SL001",
    "SL002",
    "SL003",
    "SL004",
    "SL005",
    "SL006",
    "SL007",
    "SL100",
    "SL101",
    "SL102",
    "SL103",
    "SL104",
)


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def rule_hits(path: str, rule_id: str):
    return [v for v in run_paths([path], [rule_id])]


class TestRegistry:
    def test_all_rules_registered(self):
        assert [rule.id for rule in all_rules()] == list(RULE_IDS)

    def test_every_rule_has_summary(self):
        for rule in all_rules():
            assert rule.summary

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            get_rule("SL999")


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestPerRuleFixtures:
    """One failing and one passing case per rule (acceptance criterion)."""

    def _paths(self, rule_id):
        stem = rule_id.lower()
        bad, good = fixture(f"{stem}_bad"), fixture(f"{stem}_good")
        if not os.path.isdir(bad):
            bad, good = bad + ".py", good + ".py"
        return bad, good

    def test_bad_fixture_fires(self, rule_id):
        bad, _ = self._paths(rule_id)
        assert rule_hits(bad, rule_id), f"{rule_id} silent on {bad}"

    def test_good_fixture_clean(self, rule_id):
        _, good = self._paths(rule_id)
        assert rule_hits(good, rule_id) == [], f"{rule_id} fired on {good}"


class TestRuleDetails:
    def test_sl001_catches_each_kind(self):
        messages = "\n".join(
            v.message for v in rule_hits(fixture("sl001_bad.py"), "SL001")
        )
        assert "time.time" in messages
        assert "random.random" in messages
        assert "unseeded" in messages
        assert "randint" in messages  # the from-import

    def test_sl002_typo_names_the_declared_class(self):
        violations = rule_hits(fixture("sl002_bad.py"), "SL002")
        typo = [v for v in violations if "hitz" in v.message]
        assert len(typo) == 1
        assert "PipeStats" in typo[0].message

    def test_sl002_dead_counter_reported_at_declaration(self):
        violations = rule_hits(fixture("sl002_bad.py"), "SL002")
        dead = [v for v in violations if "never_written" in v.message]
        assert len(dead) == 1
        assert "never written" in dead[0].message

    def test_sl003_annotated_param_and_self_config(self):
        messages = [v.message for v in rule_hits(fixture("sl003_bad.py"), "SL003")]
        assert any("widht" in m for m in messages)
        assert any("n_stages" in m for m in messages)

    def test_sl004_layering_and_pair_reads(self):
        messages = "\n".join(
            v.message for v in rule_hits(fixture("sl004_bad"), "SL004")
        )
        assert "redundancy-agnostic" in messages
        assert "pair-output comparison" in messages
        assert ".pair.result" in messages
        assert ".pair.output()" in messages

    def test_sl006_print_and_logging_both_flagged(self):
        messages = "\n".join(
            v.message for v in rule_hits(fixture("sl006_bad.py"), "SL006")
        )
        assert "bare print()" in messages
        assert "logging module is banned" in messages
        # Two prints + two logging imports.
        assert len(rule_hits(fixture("sl006_bad.py"), "SL006")) == 4

    def test_sl006_allowlists_the_cli_and_progress_reporter(self):
        cli = os.path.join(SRC, "cli.py")
        progress = os.path.join(SRC, "campaign", "progress.py")
        assert rule_hits(cli, "SL006") == []
        assert rule_hits(progress, "SL006") == []

    def test_sl007_flags_both_resolvers_and_names_the_method(self):
        violations = rule_hits(fixture("sl007_bad"), "SL007")
        messages = "\n".join(v.message for v in violations)
        assert "op_timing" in messages
        assert "op_latency" in messages
        assert "_issue" in messages
        assert "OP_META" in messages
        # One per call site: two stage methods plus the hot helper.
        assert len(violations) == 3

    def test_sl007_exempts_the_decoded_module(self):
        decoded = os.path.join(SRC, "core", "decoded.py")
        assert rule_hits(decoded, "SL007") == []

    def test_sl007_ignores_import_time_resolution(self):
        # The good fixture resolves op_timing at module level — sanctioned.
        assert rule_hits(fixture("sl007_good"), "SL007") == []

    def test_sl005_all_three_kinds(self):
        messages = "\n".join(
            v.message for v in rule_hits(fixture("sl005_bad.py"), "SL005")
        )
        assert "config.width" in messages
        assert "setattr" in messages
        assert "mutable default" in messages


class TestSuppression:
    def test_pragmas_silence_known_bad_code(self):
        assert run_paths([fixture("suppressed.py")]) == []

    def test_parse_line_pragmas(self):
        supp = parse_suppressions(
            ["x = 1", "y = f()  # simlint: disable=SL001,SL005", "z = 2"]
        )
        assert supp.is_suppressed("SL001", 2)
        assert supp.is_suppressed("SL005", 2)
        assert not supp.is_suppressed("SL002", 2)
        assert not supp.is_suppressed("SL001", 3)

    def test_parse_file_pragma(self):
        supp = parse_suppressions(["# simlint: disable-file=SL004"])
        assert supp.is_suppressed("SL004", 999)
        assert not supp.is_suppressed("SL001", 999)

    def test_bare_disable_silences_everything_on_line(self):
        supp = parse_suppressions(["bad()  # simlint: disable"])
        for rule_id in RULE_IDS:
            assert supp.is_suppressed(rule_id, 1)


class TestReporters:
    def test_text_clean(self):
        assert render_text([]) == "simlint: clean"

    def test_text_lists_and_tallies(self):
        violations = run_paths([fixture("sl001_bad.py")], ["SL001"])
        text = render_text(violations)
        assert "sl001_bad.py:" in text
        assert f"SL001: {len(violations)}" in text

    def test_json_roundtrip(self):
        violations = run_paths([fixture("sl005_bad.py")], ["SL005"])
        payload = json.loads(render_json(violations))
        assert payload["count"] == len(violations) > 0
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}
        assert first["rule"] == "SL005"


class TestCLI:
    def test_exit_zero_on_clean_tree(self):
        assert cli_main([fixture("sl001_good.py")]) == 0

    def test_exit_one_on_findings(self):
        assert cli_main([fixture("sl001_bad.py")]) == 1

    def test_exit_two_on_missing_path(self):
        assert cli_main([fixture("does_not_exist")]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_rule_subset(self):
        # sl005_bad has no SL001 findings, so the subset run is clean.
        assert cli_main([fixture("sl005_bad.py"), "--rules", "SL001"]) == 0

    def test_module_invocation_matches_issue_command(self):
        """`python -m tools.simlint src/repro` is the documented interface."""
        result = subprocess.run(
            [sys.executable, "-m", "tools.simlint", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout


class TestSemanticLayer:
    """Units for the module graph, call graph and taint engine."""

    def _summaries(self, *paths):
        from tools.simlint.semantic import summarize_module

        out = {}
        for path in paths:
            with open(path) as handle:
                summary = summarize_module(path, handle.read())
            out[summary.module] = summary
        return out

    def test_module_name_for_path(self):
        from tools.simlint.semantic import module_name_for_path

        assert module_name_for_path("src/repro/core/pipeline.py") == (
            "repro.core.pipeline"
        )
        assert module_name_for_path("src/repro/reuse/__init__.py") == "repro.reuse"

    def test_module_graph_edges(self):
        from tools.simlint.semantic import ModuleGraph

        summaries = self._summaries(
            os.path.join(SRC, "redundancy", "die.py"),
            os.path.join(SRC, "redundancy", "checker.py"),
        )
        graph = ModuleGraph.build(
            [(s.path, s.module, s.imports) for s in summaries.values()]
        )
        # `from .checker import CommitChecker` → a project edge.
        assert "repro.redundancy.checker" in graph.imports["repro.redundancy.die"]
        assert "repro.redundancy.die" in graph.importers_of(
            "repro.redundancy.checker"
        )

    def test_call_graph_resolves_inherited_hooks(self):
        from tools.simlint.semantic import CallGraph

        summaries = self._summaries(
            os.path.join(SRC, "core", "pipeline.py"),
            os.path.join(SRC, "redundancy", "die.py"),
            os.path.join(SRC, "redundancy", "checker.py"),
        )
        graph = CallGraph(summaries)
        die = ("repro.redundancy.die", "DIEPipeline")
        assert graph.inherited_int_attr(die, "STREAMS") == 2
        fn = graph.functions["repro.redundancy.die.DIEPipeline._hook_commit"]
        resolved = {
            callee.qualname
            for call in fn.calls
            for callee in graph.resolve_call(fn, call)
        }
        # checker = self.checker; checker.check(...) resolves through the
        # attribute-type of the same-named alias.
        assert "repro.redundancy.checker.CommitChecker.check" in resolved
        # self._retire resolves to the base-class definition.
        assert "repro.core.pipeline.OOOPipeline._retire" in resolved

    def test_taint_witness_spans_modules(self):
        hits = run_paths([fixture("sl101_bad")], ["SL101"])
        assert len(hits) == 1
        witness = hits[0].witness
        assert witness, "SL101 finding must carry a witness path"
        assert "source" in witness[0][2]
        assert "sink" in witness[-1][2]
        files = {os.path.basename(path) for path, _, _ in witness}
        assert files == {"flow.py", "sink.py"}, "witness must cross modules"

    def test_summary_serialization_roundtrip(self):
        from tools.simlint.semantic import ModuleSummary, summarize_module

        path = os.path.join(SRC, "reuse", "die_irb.py")
        with open(path) as handle:
            summary = summarize_module(path, handle.read())
        obj = summary.to_obj()
        assert json.loads(json.dumps(obj)) == obj, "facts must be JSON-safe"
        assert ModuleSummary.from_obj(obj).to_obj() == obj


class TestIncrementalCache:
    """Warm runs re-analyze only edited modules, byte-identically."""

    def _tree(self, tmp_path):
        tree = tmp_path / "tree"
        shutil.copytree(fixture("sl101_bad"), tree)
        return str(tree)

    def test_warm_run_is_fully_cached(self, tmp_path):
        tree, cache = self._tree(tmp_path), str(tmp_path / "cache")
        cold = run_analysis([tree], cache_dir=cache)
        warm = run_analysis([tree], cache_dir=cache)
        assert cold.analyzed == 2 and cold.cached == 0
        assert warm.analyzed == 0 and warm.cached == 2
        assert [v.to_dict() for v in warm.violations] == [
            v.to_dict() for v in cold.violations
        ]

    def test_edit_invalidates_only_the_edited_module(self, tmp_path):
        tree, cache = self._tree(tmp_path), str(tmp_path / "cache")
        cold = run_analysis([tree], cache_dir=cache)
        flow = os.path.join(tree, "flow.py")
        with open(flow) as handle:
            source = handle.read()
        with open(flow, "w") as handle:
            handle.write(source + "\n# touched\n")
        warm = run_analysis([tree], cache_dir=cache)
        assert warm.analyzed == 1 and warm.cached == 1
        assert [v.to_dict() for v in warm.violations] == [
            v.to_dict() for v in cold.violations
        ]

    def test_fix_clears_the_finding_on_a_warm_run(self, tmp_path):
        tree, cache = self._tree(tmp_path), str(tmp_path / "cache")
        assert run_analysis([tree], cache_dir=cache).violations
        flow = os.path.join(tree, "flow.py")
        with open(flow) as handle:
            source = handle.read()
        # Stop reading the duplicate: the taint source disappears.
        with open(flow, "w") as handle:
            handle.write(source.replace("inst.pair", "inst.shadow"))
        warm = run_analysis([tree], cache_dir=cache)
        assert warm.analyzed == 1
        assert warm.violations == []


class TestParallelAnalysis:
    def test_jobs_output_byte_identical_to_serial(self):
        serial = run_analysis([FIXTURES])
        parallel = run_analysis([FIXTURES], jobs=2)
        assert [v.to_dict() for v in parallel.violations] == [
            v.to_dict() for v in serial.violations
        ]
        assert [v.to_dict() for v in parallel.exempted] == [
            v.to_dict() for v in serial.exempted
        ]


class TestExplainAndSarif:
    def test_explain_prints_interprocedural_witness(self, capsys):
        code = cli_main([fixture("sl101_bad"), "--explain", "SL101"])
        out = capsys.readouterr().out
        assert code == 1
        assert "source: inst.pair" in out
        assert "sink: inst.result = value" in out
        assert "passed to" in out

    @pytest.mark.parametrize("rule_id", ("SL102", "SL103", "SL104"))
    def test_explain_has_witness_for_every_semantic_rule(self, rule_id, capsys):
        stem = rule_id.lower()
        bad = fixture(f"{stem}_bad")
        if not os.path.isdir(bad):
            bad += ".py"
        assert cli_main([bad, "--explain", rule_id]) == 1
        out = capsys.readouterr().out
        # At least one indented witness hop under a finding line.
        assert "\n    " in out

    def test_sarif_document_shape(self):
        violations = run_paths([fixture("sl101_bad")], ["SL101"])
        doc = json.loads(render_sarif(violations))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(RULE_IDS) <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "SL101"
        assert result["codeFlows"][0]["threadFlows"][0]["locations"]
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("sink.py")


class TestExemptionRegistry:
    def test_registered_channels_cover_the_irb_delivery(self):
        from tools.simlint.exemptions import SANCTIONED_CHANNELS

        names = {channel.qualname for channel in SANCTIONED_CHANNELS}
        assert "CommitChecker.check" in names
        assert "DIEIRBPipeline._reuse_complete" in names
        for channel in SANCTIONED_CHANNELS:
            assert channel.rationale

    def test_exempted_findings_are_reported_separately(self):
        result = run_analysis([os.path.join(SRC, "telemetry", "record.py")])
        assert result.violations == []
        assert {v.rule_id for v in result.exempted} == {"SL103"}
        assert len(result.exempted) == 2

    def test_every_exemption_entry_is_live(self):
        result = run_analysis([SRC])
        assert result.unused_exemptions == []


class TestCampaignSubsystem:
    """The campaign layer's sanctioned wall-clock use stays contained.

    Provenance timing is allowed through exactly one suppressed line —
    the ``wall_clock`` helper in ``progress.py``.  Every module on the
    worker/scheduler code path must be rule-clean with no pragmas at
    all, so nothing non-deterministic can creep into simulation state.
    """

    CAMPAIGN = os.path.join(SRC, "campaign")
    WORKER_MODULES = ("__init__.py", "jobs.py", "keys.py", "store.py", "scheduler.py")

    def test_worker_modules_clean_without_any_pragma(self):
        for name in self.WORKER_MODULES:
            path = os.path.join(self.CAMPAIGN, name)
            with open(path) as handle:
                source = handle.read()
            assert "simlint: disable" not in source, f"{name} uses a pragma"
            assert run_paths([path]) == [], f"{name} has violations"

    def test_wall_clock_helper_is_the_only_suppression(self):
        path = os.path.join(self.CAMPAIGN, "progress.py")
        with open(path) as handle:
            lines = handle.read().splitlines()
        pragmas = [line for line in lines if "simlint: disable" in line]
        assert len(pragmas) == 1
        assert "time.perf_counter()" in pragmas[0]
        assert "disable=SL001" in pragmas[0]

    def test_progress_module_scans_clean_with_suppression(self):
        path = os.path.join(self.CAMPAIGN, "progress.py")
        assert run_paths([path]) == []


class TestSelfCheck:
    """The simulator source itself must satisfy every invariant."""

    def test_src_repro_is_clean(self):
        violations = run_paths([SRC])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_seeded_bad_fixtures_nonzero_via_cli(self):
        for stem in ("sl001", "sl002", "sl003", "sl005"):
            assert cli_main([fixture(f"{stem}_bad.py")]) == 1
        assert cli_main([fixture("sl004_bad")]) == 1
