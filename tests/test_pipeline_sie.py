"""Directed timing tests for the SIE out-of-order pipeline.

These pin the model's fundamental contracts: dataflow order, functional
unit structural hazards, stage widths, RUU/LSQ capacity, memory latency
and branch handling — using hand-assembled micro-programs so every
expectation is analyzable.
"""

import dataclasses

import pytest

from repro.core import DeadlockError, MachineConfig, OOOPipeline
from repro.isa import Opcode, int_reg
from repro.simulation import simulate

from helpers import addi, straightline

R1, R2, R3, R4, R5 = (int_reg(i) for i in range(1, 6))


def run_sie(ops, config=None, count=None, warmup=True):
    # Warmup trains the I-cache/D-cache/predictor so micro-timings are not
    # swamped by cold-start DRAM fills.
    trace = straightline(ops, count=count)
    return simulate(trace, "sie", config=config, warmup=warmup)


def cycles(ops, config=None):
    return run_sie(ops, config=config).stats.cycles


class TestBasicTiming:
    def test_single_instruction_latency(self):
        config = MachineConfig.baseline()
        base = cycles([addi(R1, 0, 1)])
        # dispatch at frontend_latency, ready+issue next cycle, complete
        # the cycle after, commit in that same cycle's stage pass, plus
        # the final cycle increment.
        assert base == config.frontend_latency + 3

    def test_independent_ops_are_free(self):
        one = cycles([addi(R1, 0, 1)])
        four = cycles([addi(R1, 0, 1), addi(R2, 0, 2), addi(R3, 0, 3), addi(R4, 0, 4)])
        assert four == one

    def test_dependent_chain_costs_one_cycle_each(self):
        one = cycles([addi(R1, 0, 1)])
        chain = [addi(R1, 0, 1)] + [addi(R1, R1, 1) for _ in range(5)]
        assert cycles(chain) == one + 5

    def test_mul_latency_on_chain(self):
        base = cycles([addi(R1, 0, 3), (Opcode.ADD, R2, R1, R1, 0)])
        mul = cycles([addi(R1, 0, 3), (Opcode.MUL, R2, R1, R1, 0)])
        assert mul == base + 2  # MUL latency 3 vs ADD latency 1

    def test_nop_flows_through(self):
        result = run_sie([(Opcode.NOP, None, None, None, 0)])
        assert result.stats.committed == 1


class TestStructuralHazards:
    def test_alu_bandwidth_limits_issue(self):
        # 8 independent ADDIs vs 4 ALUs: one extra cycle.
        four = cycles([addi(int_reg(1 + i), 0, i) for i in range(4)])
        eight = cycles([addi(int_reg(1 + i), 0, i) for i in range(8)])
        assert eight == four + 1

    def test_issue_width_limits(self):
        narrow = dataclasses.replace(MachineConfig.baseline(), issue_width=1)
        ops = [addi(int_reg(1 + i), 0, i) for i in range(4)]
        assert cycles(ops, config=narrow) == cycles(ops) + 3

    def test_unpipelined_divider_serializes(self):
        one_div_ops = [addi(R1, 0, 9), addi(R2, 0, 3), (Opcode.DIV, R3, R1, R2, 0)]
        three_div_ops = one_div_ops + [
            (Opcode.DIV, R4, R1, R2, 0),
            (Opcode.DIV, R5, R1, R2, 0),
        ]
        # Baseline has 2 int mul/div units; the third DIV waits for a
        # unit to free (init interval 19).
        delta = cycles(three_div_ops) - cycles(one_div_ops)
        assert delta >= 18

    def test_commit_width_bounds_retirement(self):
        narrow = dataclasses.replace(MachineConfig.baseline(), commit_width=1)
        ops = [addi(int_reg(1 + i), 0, i) for i in range(4)]
        assert cycles(ops, config=narrow) == cycles(ops) + 3


class TestCapacityLimits:
    def test_tiny_ruu_slows_independent_work(self):
        tiny = dataclasses.replace(MachineConfig.baseline(), ruu_size=4, lsq_size=2)
        ops = [addi(int_reg(1 + (i % 8)), 0, i) for i in range(32)]
        assert cycles(ops, config=tiny) > cycles(ops)

    def test_lsq_capacity_gates_memory_dispatch(self):
        tiny = dataclasses.replace(MachineConfig.baseline(), lsq_size=1)
        ops = [addi(R1, 0, 0x2000)] + [
            (Opcode.LOAD, int_reg(2 + (i % 8)), R1, None, 8 * i) for i in range(8)
        ]
        slow = run_sie(ops, config=tiny)
        fast = run_sie(ops)
        assert slow.stats.cycles > fast.stats.cycles
        assert slow.stats.dispatch_stall_lsq > 0


class TestMemoryTiming:
    def test_load_use_latency(self):
        config = MachineConfig.baseline()
        # Dependent chain through a load vs through an ADD: the address
        # calculation overlaps the ADD's slot, so the chain grows by the
        # L1D hit latency (access starts the cycle the address is done).
        alu_chain = cycles([addi(R1, 0, 0x2000), (Opcode.ADD, R2, R1, R1, 0), (Opcode.ADD, R3, R2, R2, 0)])
        load_chain = cycles(
            [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0), (Opcode.ADD, R3, R2, R2, 0)]
        )
        assert load_chain == alu_chain + config.hierarchy.l1d.hit_latency

    def test_cache_ports_limit_concurrent_loads(self):
        one_port = dataclasses.replace(MachineConfig.baseline(), cache_ports=1)
        ops = [addi(R1, 0, 0x2000)] + [
            (Opcode.LOAD, int_reg(2 + i), R1, None, 8 * i) for i in range(6)
        ]
        assert cycles(ops, config=one_port) > cycles(ops)

    def test_store_completes_without_blocking(self):
        ops = [
            addi(R1, 0, 0x2000),
            addi(R2, 0, 42),
            (Opcode.STORE, None, R1, R2, 0),
            addi(R3, 0, 1),
        ]
        result = run_sie(ops)
        assert result.stats.committed == 4


class TestBranchHandling:
    def test_well_predicted_loop_is_cheap(self):
        # A counted loop: after warmup the back edge is predicted.
        ops = [
            addi(R1, 0, 40),
            addi(R1, R1, -1),
            (Opcode.BNE, None, R1, 0, 0, 4),
        ]
        trace_len = 1 + 40 * 2
        result = run_sie(ops, count=trace_len, warmup=True)
        assert result.stats.mispredict_rate < 0.1

    def test_unpredictable_branch_costs(self):
        # Direction flips with the low bit of a counter every iteration —
        # gshare learns this; a data-random pattern cannot be built
        # deterministically here, so instead check the penalty plumbing:
        # a cold BTB jump pays a redirect.
        ops = [addi(R1, 0, 1), (Opcode.JUMP, None, None, None, 0, 16), addi(R2, 0, 2), addi(R3, 0, 3), addi(R4, 0, 4)]
        cold = run_sie(ops, warmup=False)
        assert cold.stats.mispredicts >= 1

    def test_mispredict_stalls_fetch(self):
        taken_then_not = [
            addi(R1, 0, 1),
            (Opcode.BNE, None, R1, 0, 0, 16),  # always taken, cold BTB
            addi(R2, 0, 9),
            addi(R3, 0, 9),
            addi(R4, 0, 4),
        ]
        result = run_sie(taken_then_not, warmup=False)
        assert result.stats.fetch_stall_mispredict > 0


class TestRobustness:
    def test_deadlock_guard_raises(self):
        trace = straightline([addi(R1, 0, 1)])
        pipeline = OOOPipeline(trace)
        with pytest.raises(DeadlockError):
            pipeline.run(max_cycles=1)

    def test_empty_trace_rejected(self):
        from repro.workloads import Trace

        with pytest.raises(ValueError):
            OOOPipeline(Trace(name="empty", insts=[]))

    def test_all_instructions_commit_exactly_once(self):
        ops = [addi(int_reg(1 + (i % 8)), 0, i) for i in range(20)]
        result = run_sie(ops)
        assert result.stats.committed == 20
        assert result.stats.dispatched == 20

    def test_stats_cycles_positive(self):
        assert cycles([addi(R1, 0, 1)]) > 0
