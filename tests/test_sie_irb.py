"""Tests for the classic SIE-IRB baseline [29]."""

from repro.isa import FUClass, Opcode, int_reg
from repro.simulation import simulate

from helpers import addi, assemble
from repro.workloads.executor import FunctionalExecutor

R1, R2, R3 = int_reg(1), int_reg(2), int_reg(3)


def repetitive_trace(iterations=12):
    ops = [addi(R1, 0, 5), addi(R2, 0, 7), (Opcode.ADD, R3, R1, R2, 0)]
    return FunctionalExecutor(assemble(ops)).run(4 * iterations)


class TestSieIrb:
    def test_reuse_happens_on_single_stream(self):
        result = simulate(repetitive_trace(), "sie-irb")
        assert result.stats.irb_reuse_hits > 20

    def test_reuse_hits_still_consume_issue_slots(self):
        # Unlike DIE-IRB, the classic scheme selects reuse hits like FU
        # ops, so issue counts match plain SIE.
        trace = repetitive_trace()
        sie = simulate(trace, "sie")
        sie_irb = simulate(trace, "sie-irb")
        assert sie_irb.stats.issued == sie.stats.issued

    def test_reuse_hits_skip_the_alus(self):
        trace = repetitive_trace(iterations=50)
        sie = simulate(trace, "sie")
        sie_irb = simulate(trace, "sie-irb")
        assert (
            sie_irb.stats.fu_issued[FUClass.INT_ALU]
            < sie.stats.fu_issued[FUClass.INT_ALU]
        )

    def test_load_reuse_covers_address_only(self):
        # A reused load must still access the D-cache.
        ops = [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0)]
        trace = FunctionalExecutor(assemble(ops)).run(3 * 20)
        sie = simulate(trace, "sie")
        sie_irb = simulate(trace, "sie-irb")
        assert (
            sie_irb.pipeline.hier.l1d.stats.accesses
            == sie.pipeline.hier.l1d.stats.accesses
        )

    def test_sie_irb_helps_less_than_die_irb(self, gzip_trace):
        """Citron's observation: reuse barely helps a balanced SIE core,
        while the same IRB attacks DIE's real bandwidth shortage."""
        sie = simulate(gzip_trace, "sie").ipc
        sie_irb = simulate(gzip_trace, "sie-irb").ipc
        die = simulate(gzip_trace, "die").ipc
        die_irb = simulate(gzip_trace, "die-irb").ipc
        sie_gain = sie_irb / sie
        die_gain = die_irb / die
        assert die_gain > sie_gain

    def test_commits_everything(self, gzip_trace):
        result = simulate(gzip_trace, "sie-irb")
        assert result.stats.committed == len(gzip_trace)
