"""Tests for trace containers, summaries, cold ranges and warmup."""

import pytest

from repro.core import OOOPipeline
from repro.isa import Opcode, int_reg
from repro.simulation import get_trace, simulate
from repro.workloads import Trace
from repro.workloads.program import DataArray

from helpers import addi, straightline

R1, R2 = int_reg(1), int_reg(2)


class TestDataArray:
    def test_geometry(self):
        arr = DataArray("a", base=0x1000, words=16, entropy=4)
        assert arr.size_bytes == 128
        assert arr.limit == 0x1080
        assert arr.contains(0x1000) and arr.contains(0x107F)
        assert not arr.contains(0x1080)


class TestTraceContainer:
    def test_sequence_protocol(self):
        trace = straightline([addi(R1, 0, 1), addi(R2, 0, 2)])
        assert len(trace) == 2
        assert trace[0].opcode is Opcode.ADDI
        assert [i.seq for i in trace] == [0, 1]

    def test_summary_counts(self):
        trace = straightline(
            [
                addi(R1, 0, 0x2000),
                (Opcode.LOAD, R2, R1, None, 0),
                (Opcode.STORE, None, R1, R1, 8),
                (Opcode.BEQ, None, R1, R1, 0, 16),
            ],
            count=4,
        )
        summary = trace.summary()
        assert summary.length == 4
        assert summary.load_frac == 0.25
        assert summary.store_frac == 0.25
        assert summary.branch_frac == 0.25
        assert summary.taken_frac == 1.0  # r1 == r1

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            Trace(name="x", insts=[]).summary()

    def test_value_repetition_detects_repeats(self):
        # One ADDI + the closing JUMP, looped 4 times: the first pass of
        # each PC is novel, every later pass repeats -> 6/8.
        trace = straightline([addi(R1, 0, 5)], count=8)
        assert trace.summary().value_repetition == pytest.approx(0.75)

    def test_cold_range_membership(self):
        trace = Trace(name="x", insts=[], cold_ranges=((0x1000, 0x2000),))
        assert trace.is_cold(0x1000)
        assert trace.is_cold(0x1FFF)
        assert not trace.is_cold(0x2000)
        assert not trace.is_cold(0x0)


class TestWarmup:
    def test_warmup_trains_caches(self):
        ops = [addi(R1, 0, 0x2000)] + [
            (Opcode.LOAD, int_reg(2 + i), R1, None, 8 * i) for i in range(4)
        ]
        trace = straightline(ops)
        pipeline = OOOPipeline(trace)
        pipeline.warm_up()
        assert pipeline.hier.l1d.contains(0x2000)
        assert pipeline.hier.l1d.stats.accesses == 0  # stats were reset

    def test_warmup_skips_cold_ranges(self):
        ops = [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0)]
        trace = straightline(ops)
        trace.cold_ranges = ((0x2000, 0x3000),)
        pipeline = OOOPipeline(trace)
        pipeline.warm_up()
        assert not pipeline.hier.l1d.contains(0x2000)

    def test_warmup_improves_ipc(self):
        trace = get_trace("gzip", 5000)
        cold = simulate(trace, "sie", warmup=False).ipc
        warm = simulate(trace, "sie", warmup=True).ipc
        assert warm > cold

    def test_warmup_trains_predictor(self):
        trace = get_trace("gzip", 5000)
        warm = simulate(trace, "sie", warmup=True)
        cold = simulate(trace, "sie", warmup=False)
        assert warm.stats.mispredict_rate <= cold.stats.mispredict_rate

    def test_cold_art_heap_stays_cold(self):
        trace = get_trace("art", 5000)
        result = simulate(trace, "sie", warmup=True)
        # The streaming heap must still generate DRAM traffic post-warmup.
        assert result.pipeline.hier.dram.requests > 0
