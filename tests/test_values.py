"""Unit and property tests for 64-bit value arithmetic."""

import math

from hypothesis import given, strategies as st

from repro.workloads import int_div, to_unsigned64, wrap64
from repro.workloads.values import fp_canon, fp_div, fp_sqrt

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

any_int = st.integers(min_value=-(1 << 80), max_value=1 << 80)
i64 = st.integers(min_value=I64_MIN, max_value=I64_MAX)


class TestWrap64:
    def test_identity_in_range(self):
        assert wrap64(42) == 42
        assert wrap64(I64_MIN) == I64_MIN
        assert wrap64(I64_MAX) == I64_MAX

    def test_overflow_wraps(self):
        assert wrap64(I64_MAX + 1) == I64_MIN
        assert wrap64(I64_MIN - 1) == I64_MAX

    @given(any_int)
    def test_result_always_in_range(self, value):
        assert I64_MIN <= wrap64(value) <= I64_MAX

    @given(any_int)
    def test_idempotent(self, value):
        assert wrap64(wrap64(value)) == wrap64(value)

    @given(any_int, any_int)
    def test_addition_congruence(self, a, b):
        assert wrap64(a + b) == wrap64(wrap64(a) + wrap64(b))

    @given(i64)
    def test_unsigned_roundtrip(self, value):
        assert wrap64(to_unsigned64(value)) == value


class TestIntDiv:
    def test_truncates_toward_zero(self):
        assert int_div(7, 2) == 3
        assert int_div(-7, 2) == -3
        assert int_div(7, -2) == -3
        assert int_div(-7, -2) == 3

    def test_divide_by_zero_is_total(self):
        assert int_div(5, 0) == 0

    @given(i64, i64)
    def test_in_range(self, a, b):
        assert I64_MIN <= int_div(a, b) <= I64_MAX

    @given(i64.filter(lambda v: v != 0))
    def test_self_division(self, a):
        assert int_div(a, a) == 1


class TestFloatHelpers:
    def test_nan_collapses(self):
        assert fp_canon(float("nan")) == 0.0

    def test_inf_clamps(self):
        assert fp_canon(float("inf")) == 1e308
        assert fp_canon(float("-inf")) == -1e308

    def test_sqrt_total_on_negative(self):
        assert fp_sqrt(-4.0) == 2.0

    def test_div_by_zero_total(self):
        assert fp_div(1.0, 0.0) == 1e308
        assert fp_div(-1.0, 0.0) == -1e308
        assert fp_div(0.0, 0.0) == 0.0

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_canon_finite_passthrough(self, value):
        assert fp_canon(value) == value

    @given(
        st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
        st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
    )
    def test_div_always_finite(self, a, b):
        assert math.isfinite(fp_div(a, b))
