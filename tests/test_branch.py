"""Unit and property tests for the branch-prediction substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    HybridPredictor,
    ReturnAddressStack,
    SaturatingCounter,
    make_predictor,
)


class TestSaturatingCounter:
    def test_initial_is_weakly_not_taken(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 2
        assert counter.taken

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0

    @given(st.lists(st.booleans(), max_size=50), st.integers(1, 4))
    def test_value_always_in_range(self, outcomes, bits):
        counter = SaturatingCounter(bits=bits)
        for outcome in outcomes:
            counter.update(outcome)
            assert 0 <= counter.value <= counter.max

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)


class TestBimodal:
    def test_learns_always_taken(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            pred.update(0x100, True, pred.predict(0x100))
        assert pred.predict(0x100)

    def test_learns_always_not_taken(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            pred.update(0x100, False, pred.predict(0x100))
        assert not pred.predict(0x100)

    def test_accuracy_tracking(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(100):
            pred.update(0x40, True, pred.predict(0x40))
        assert pred.stats.accuracy > 0.9

    def test_distinct_pcs_use_distinct_counters(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            pred.update(0x100, True, True)
            pred.update(0x104, False, False)
        assert pred.predict(0x100)
        assert not pred.predict(0x104)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)


class TestGshare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N is invisible to bimodal but trivial for global history.
        pred = GsharePredictor(entries=1024, history_bits=8)
        outcomes = [bool(i % 2) for i in range(400)]
        correct = 0
        for outcome in outcomes:
            predicted = pred.predict(0x200)
            correct += predicted == outcome
            pred.update(0x200, outcome, predicted)
        assert correct / len(outcomes) > 0.9

    def test_history_updates(self):
        pred = GsharePredictor(history_bits=4)
        pred.update(0x10, True, True)
        pred.update(0x10, False, True)
        assert pred.history == 0b10

    def test_history_masked(self):
        pred = GsharePredictor(history_bits=3)
        for _ in range(10):
            pred.update(0x10, True, True)
        assert pred.history == 0b111


class TestHybrid:
    def test_beats_components_on_mixed_workload(self):
        hybrid = HybridPredictor()
        # Two branches: one alternating (gshare territory), one biased
        # (bimodal territory).
        for i in range(300):
            for pc, outcome in ((0x30, bool(i % 2)), (0x60, True)):
                predicted = hybrid.predict(pc)
                hybrid.update(pc, outcome, predicted)
        assert hybrid.stats.accuracy > 0.85

    def test_factory(self):
        for kind in ("bimodal", "gshare", "hybrid", "taken", "nottaken", "perfect"):
            predictor = make_predictor(kind)
            assert hasattr(predictor, "predict")

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("tage")

    def test_reset_stats_keeps_training(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(8):
            pred.update(0x100, True, pred.predict(0x100))
        pred.reset_stats()
        assert pred.stats.lookups == 0
        assert pred.predict(0x100)  # trained state survives


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x1000)
        assert btb.lookup(0x400) == 0x1000

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.update(0x400, 0x1000)
        btb.update(0x400, 0x2000)
        assert btb.lookup(0x400) == 0x2000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x0, 0xA)
        btb.update(0x4, 0xB)
        btb.lookup(0x0)  # refresh 0x0
        btb.update(0x8, 0xC)  # evicts 0x4
        assert btb.lookup(0x0) == 0xA
        assert btb.lookup(0x4) is None

    def test_hit_rate_accounting(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.lookup(0x4)
        btb.update(0x4, 0x8)
        btb.lookup(0x4)
        assert btb.hits == 1 and btb.misses == 1
        assert btb.hit_rate == 0.5

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 4095)), max_size=60))
    def test_lookup_returns_last_update(self, updates):
        btb = BranchTargetBuffer(sets=4, ways=4)
        last = {}
        for pc4, target in updates:
            pc = pc4 * 4
            btb.update(pc, target)
            last[pc] = target
        # Whatever is still resident must be the most recent target.
        for pc, target in last.items():
            found = btb.lookup(pc)
            assert found is None or found == target


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=40))
    def test_depth_never_exceeded(self, operations):
        ras = ReturnAddressStack(depth=3)
        for index, op in enumerate(operations):
            if op == "push":
                ras.push(index)
            else:
                ras.pop()
            assert len(ras) <= 3
