"""Tier-1 tests for the sampled-simulation subsystem (``repro.sampling``).

Covers the contracts the rest of the repo leans on: deterministic BBV
fingerprints (cross-process, hash-seed independent), store-key
separation between sampled and full runs, the exact-extrapolation policy
(weights sum to one so committed instructions reconstruct exactly),
the faults x sampling mutual exclusion, campaign integration (ambient
plan, warm re-runs from the store) and the ``sample report`` CLI
artifact.  Accuracy at scale is gated separately by
``benchmarks/bench_sampling.py`` and the CI ``sample-smoke`` job.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    Job,
    ResultStore,
    campaign_context,
    current_context,
    job_key,
    run_campaign,
)
from repro.campaign.keys import job_spec
from repro.redundancy import EXEC_DUP, Fault
from repro.sampling import (
    SamplingPlan,
    profile_trace,
    run_sampled,
    select_regions,
)
from repro.simulation import get_trace, simulate
from repro.validation.harness import run_case
from repro.validation.invariants import check_sampled_tolerance

N = 9_000
REPO_ROOT = Path(__file__).resolve().parent.parent


def _fingerprints_via_subprocess(hash_seed: str) -> str:
    """Concatenated BBV fingerprints computed in a fresh interpreter."""
    script = (
        "from repro.simulation import get_trace\n"
        "from repro.sampling import profile_trace\n"
        f"profile = profile_trace(get_trace('gzip', {N}), 150)\n"
        "print(''.join(i.fingerprint for i in profile.intervals))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PYTHONHASHSEED": hash_seed},
    )
    return result.stdout.strip()


class TestBBVDeterminism:
    def test_fingerprints_identical_across_processes(self):
        """Same workload => byte-identical fingerprints, even with
        different interpreter hash seeds (dict order must not leak)."""
        first = _fingerprints_via_subprocess("0")
        second = _fingerprints_via_subprocess("12345")
        assert first and first == second

    def test_in_process_profile_matches_subprocess(self):
        profile = profile_trace(get_trace("gzip", N), 150)
        joined = "".join(i.fingerprint for i in profile.intervals)
        assert joined == _fingerprints_via_subprocess("7")

    def test_selection_is_deterministic(self):
        trace = get_trace("vpr", N)
        plan = SamplingPlan()
        a = select_regions(trace, plan)
        b = select_regions(get_trace("vpr", N), plan)
        assert a.phase_of == b.phase_of
        assert [(r.start, r.end, r.weight) for r in a.regions] == [
            (r.start, r.end, r.weight) for r in b.regions
        ]


class TestStoreKeys:
    def test_sampled_and_full_jobs_never_share_a_key(self):
        full = Job("gzip", N)
        sampled = Job("gzip", N, sampling=SamplingPlan())
        assert job_key(full) != job_key(sampled)

    def test_plan_parameters_are_key_material(self):
        base = job_key(Job("gzip", N, sampling=SamplingPlan()))
        for plan in (
            SamplingPlan(interval=100),
            SamplingPlan(chunk=4),
            SamplingPlan(budget=0.25),
            SamplingPlan(seed=43),
        ):
            assert job_key(Job("gzip", N, sampling=plan)) != base

    def test_full_job_spec_omits_sampling(self):
        """Legacy key stability: pre-sampling store keys must not move."""
        assert "sampling" not in job_spec(Job("gzip", N))
        assert "sampling" in job_spec(Job("gzip", N, sampling=SamplingPlan()))


class TestExtrapolationPolicy:
    def test_committed_reconstructs_exactly(self):
        """Region weights sum to one, so extrapolated committed == N."""
        trace = get_trace("gzip", N)
        sampled = run_sampled(trace, SamplingPlan())
        assert sampled.stats.committed == N

    def test_coverage_respects_budget(self):
        plan = SamplingPlan()
        for app in ("gzip", "mcf"):
            selection = select_regions(get_trace(app, N), plan)
            assert selection.coverage <= plan.budget + 1e-9

    def test_sampled_ipc_close_to_full(self):
        trace = get_trace("gzip", 20_000)
        full = simulate(trace, model="die-irb")
        sampled = run_sampled(trace, SamplingPlan(), model="die-irb")
        assert abs(sampled.ipc - full.ipc) / full.ipc < 0.06

    def test_full_budget_reconstruction_invariant(self):
        """The fuzz invariant's exact check, on a real trace: at
        budget=1.0 every interval is measured and committed is exact."""
        case = run_case(get_trace("art", 6_000), ["sie"])
        assert check_sampled_tolerance(case, "sie") == []


class TestFaultsExclusion:
    def test_job_rejects_faults_with_sampling(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Job(
                "gzip",
                N,
                faults=(Fault(EXEC_DUP, seq=2),),
                sampling=SamplingPlan(),
            )


class TestCampaignIntegration:
    def test_context_carries_sampling_plan(self):
        plan = SamplingPlan()
        with campaign_context(sampling=plan):
            assert current_context().sampling is plan
        assert current_context() is None

    def test_warm_rerun_runs_zero_simulations(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [
            Job("gzip", N, model=m, sampling=SamplingPlan())
            for m in ("sie", "die")
        ]
        cold = run_campaign(jobs, store=store)
        assert cold.executed == 2 and cold.store_hits == 0
        warm = run_campaign(jobs, store=store)
        assert warm.executed == 0 and warm.store_hits == 2
        for first, second in zip(cold.results, warm.results):
            assert first.stats == second.stats


class TestSampleReportCLI:
    def test_json_artifact_is_complete(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "sample",
                "report",
                "gzip",
                "--n",
                str(N),
                "--json",
            ],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        payload = json.loads(result.stdout)
        assert payload["workload"] == "gzip"
        assert payload["n_insts"] == N
        assert len(payload["phase_of"]) == payload["intervals"]
        assert payload["coverage"] <= payload["plan"]["budget"] + 1e-9
        weights = [region["weight"] for region in payload["regions"]]
        assert abs(sum(weights) - 1.0) < 1e-9
