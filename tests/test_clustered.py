"""Tests for the clustered-DIE extension (the paper's postponed study)."""

import pytest

from repro.core import DUPLICATE, DynInst, PRIMARY
from repro.isa import FUClass, int_reg
from repro.redundancy import (
    DIEClusterReplicatedPipeline,
    DIEClusterSplitPipeline,
    DIEClusteredPipeline,
)
from repro.simulation import simulate

from helpers import addi, straightline

R1 = int_reg(1)


class TestConstruction:
    def test_split_halves_the_complement(self, gzip_trace):
        pipeline = DIEClusterSplitPipeline(gzip_trace)
        for cluster in pipeline.clusters:
            assert cluster.counts[FUClass.INT_ALU] == 2
            assert cluster.counts[FUClass.FP_MULDIV] == 1  # floor at 1

    def test_replicated_keeps_the_full_complement(self, gzip_trace):
        pipeline = DIEClusterReplicatedPipeline(gzip_trace)
        for cluster in pipeline.clusters:
            assert cluster.counts[FUClass.INT_ALU] == 4

    def test_unknown_variant_rejected(self, gzip_trace):
        with pytest.raises(ValueError):
            DIEClusteredPipeline(gzip_trace, variant="hexa")

    def test_intercluster_delay_applies_across_streams(self, gzip_trace):
        pipeline = DIEClusterSplitPipeline(gzip_trace)
        producer = DynInst(gzip_trace[0], PRIMARY)
        same = DynInst(gzip_trace[1], PRIMARY)
        other = DynInst(gzip_trace[1], DUPLICATE)
        assert pipeline._hook_wake_delay(producer, same) == 0
        assert pipeline._hook_wake_delay(producer, other) == pipeline.intercluster_delay


class TestBehaviour:
    def test_both_variants_commit_everything(self, gzip_trace):
        for model in ("die-cluster-split", "die-cluster-repl"):
            result = simulate(gzip_trace, model)
            assert result.stats.committed == len(gzip_trace)
            assert result.stats.check_mismatches == 0

    def test_replicated_beats_split(self, gzip_trace):
        split = simulate(gzip_trace, "die-cluster-split").ipc
        repl = simulate(gzip_trace, "die-cluster-repl").ipc
        assert repl >= split

    def test_replicated_approaches_sie(self, gzip_trace):
        sie = simulate(gzip_trace, "sie").ipc
        repl = simulate(gzip_trace, "die-cluster-repl").ipc
        assert repl >= 0.8 * sie

    def test_clusters_bound_per_stream_issue(self):
        # 8 independent ADDIs: split clusters give each stream only 2
        # ALUs + half the issue width, so the duplicated load serializes
        # more than in base DIE's shared pool.
        ops = [addi(int_reg(1 + i), 0, i) for i in range(8)]
        trace = straightline(ops)
        die = simulate(trace, "die").stats.cycles
        split = simulate(trace, "die-cluster-split").stats.cycles
        assert split >= die

    def test_a4_experiment_renders(self):
        from repro.experiments import get_experiment

        result = get_experiment("A4").run(apps=("gzip",), n_insts=4000)
        text = result.render()
        assert "Cluster/2" in text and "DIE-IRB" in text
