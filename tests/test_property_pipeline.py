"""Property-based cross-model pipeline tests.

Random micro-programs are pushed through all nine timing models; whatever
the program, the structural invariants must hold: everything commits
exactly once, no deadlock, redundancy never beats the redundancy-free
machine, and fault-free redundant runs never flag mismatches.

Example budgets and deadlines come from the hypothesis profiles in
``conftest.py`` (``dev`` locally, ``ci`` under CI).
"""

import dataclasses

from hypothesis import given, strategies as st

from repro.core import MachineConfig
from repro.isa import Opcode, int_reg
from repro.simulation import MODELS, simulate
from repro.validation import (
    PAIR_CHECKED_MODELS,
    REDUNDANT_MODELS,
    jitter_slack,
    reuse_slack,
)

from helpers import assemble
from repro.workloads.executor import FunctionalExecutor

ALL_MODELS = tuple(sorted(MODELS))

_REGS = [int_reg(i) for i in range(1, 12)]

_alu_op = st.tuples(
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.SLT]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
).map(lambda t: (t[0], t[1], t[2], t[3], 0))

_imm_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(-1000, 1000),
).map(lambda t: (Opcode.ADDI, t[0], t[1], None, t[2]))

_longlat_op = st.tuples(
    st.sampled_from([Opcode.MUL, Opcode.DIV]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
).map(lambda t: (t[0], t[1], t[2], t[3], 0))

_fp_op = st.tuples(
    st.sampled_from([Opcode.FADD, Opcode.FMUL, Opcode.FDIV]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
).map(lambda t: (t[0], t[1], t[2], t[3], 0))

_load_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(0, 30),
).map(lambda t: (Opcode.LOAD, t[0], t[1], None, t[2] * 8))

_store_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(0, 30),
).map(lambda t: (Opcode.STORE, None, t[0], t[1], t[2] * 8))

# Byte-granular addressing: nothing forces the generated offsets onto
# word boundaries, so the LSQ and the duplicate stream must cope.
_misaligned_op = st.tuples(
    st.sampled_from([Opcode.LOAD, Opcode.STORE]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(0, 240),
).map(
    lambda t: (t[0], t[1], t[2], None, t[3])
    if t[0] is Opcode.LOAD
    else (t[0], None, t[1], t[2], t[3])
)

_any_op = st.one_of(_imm_op, _alu_op, _longlat_op, _load_op, _store_op)

programs = st.lists(_any_op, min_size=1, max_size=30)
loops = st.integers(1, 3)


@st.composite
def branchy_programs(draw):
    """A program salted with forward conditional branches.

    Targets stay inside the image (the trailing JUMP at ``len(ops)*4`` is
    a valid target), and whether each branch is taken depends on register
    values, so examples exercise taken, not-taken and mixed paths.
    """
    body = list(draw(st.lists(_any_op, min_size=4, max_size=24)))
    n = len(body)
    for _ in range(draw(st.integers(1, 4))):
        position = draw(st.integers(0, n - 1))
        opcode = draw(st.sampled_from([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]))
        src1 = draw(st.sampled_from(_REGS))
        src2 = draw(st.sampled_from(_REGS))
        target_index = draw(st.integers(position + 1, n))
        body[position] = (opcode, None, src1, src2, 0, target_index * 4)
    return body


@st.composite
def misaligned_adjacent_programs(draw):
    """Memory traffic at byte-adjacent, arbitrarily aligned addresses.

    Each drawn access is doubled: a partner touches the very next byte,
    so overlapping/adjacent LSQ entries appear in every example.
    """
    accesses = draw(st.lists(_misaligned_op, min_size=2, max_size=12))
    body = []
    for row in accesses:
        body.append(row)
        opcode, dst, src1, src2, imm = row
        body.append((opcode, dst, src1, src2, imm + 1))
    fillers = draw(st.lists(st.one_of(_imm_op, _alu_op), min_size=1, max_size=6))
    return body + fillers


def _trace_for(ops, loops):
    program = assemble(ops)
    count = (len(ops) + 1) * loops
    return FunctionalExecutor(program).run(count)


@given(ops=programs, loops=loops)
def test_all_models_commit_everything(ops, loops):
    trace = _trace_for(ops, loops)
    for model in ALL_MODELS:
        result = simulate(trace, model)
        assert result.stats.committed == len(trace), model


@given(ops=branchy_programs(), loops=loops)
def test_branch_mixes_commit_on_all_models(ops, loops):
    trace = _trace_for(ops, loops)
    for model in ALL_MODELS:
        result = simulate(trace, model)
        assert result.stats.committed == len(trace), model
        assert result.stats.branches > 0, model


@given(ops=misaligned_adjacent_programs(), loops=loops)
def test_misaligned_adjacent_memory_on_all_models(ops, loops):
    trace = _trace_for(ops, loops)
    for model in ALL_MODELS:
        result = simulate(trace, model)
        assert result.stats.committed == len(trace), model


@given(ops=programs, loops=loops)
def test_redundancy_never_wins(ops, loops):
    # Out-of-order scheduling is non-monotonic in resource pressure, so
    # the bounds carry the same second-order slack as the fuzz invariants
    # (docs/VALIDATION.md); real redundancy bugs overshoot it by 10x+.
    trace = _trace_for(ops, loops)
    sie = simulate(trace, "sie").stats.cycles
    die = simulate(trace, "die").stats.cycles
    for model in REDUNDANT_MODELS:
        cycles = simulate(trace, model).stats.cycles
        assert cycles >= sie - jitter_slack(sie), model
    die_irb = simulate(trace, "die-irb").stats.cycles
    assert die_irb <= die + reuse_slack(die)  # the IRB pipeline is not free


@given(ops=programs, loops=loops)
def test_fault_free_redundancy_is_clean(ops, loops):
    trace = _trace_for(ops, loops)
    for model in PAIR_CHECKED_MODELS:
        result = simulate(trace, model)
        assert result.stats.check_mismatches == 0, model
        assert result.stats.pairs_checked == len(trace), model


@given(ops=branchy_programs(), loops=loops)
def test_fault_free_srt_is_clean(ops, loops):
    trace = _trace_for(ops, loops)
    result = simulate(trace, "srt")
    assert result.stats.check_mismatches == 0
    assert result.stats.committed == len(trace)


@given(
    ops=programs,
    ruu=st.sampled_from([8, 32, 128]),
    width=st.sampled_from([2, 8]),
)
def test_tiny_machines_never_deadlock(ops, ruu, width):
    trace = _trace_for(ops, 2)
    config = dataclasses.replace(
        MachineConfig.baseline(),
        ruu_size=ruu,
        lsq_size=max(2, ruu // 2),
        fetch_width=width,
        decode_width=width,
        issue_width=width,
        commit_width=width,
    )
    for model in ("sie", "die", "die-irb", "srt", "die-cluster-split"):
        result = simulate(trace, model, config=config)
        assert result.stats.committed == len(trace)
