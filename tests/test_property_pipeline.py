"""Property-based cross-model pipeline tests.

Random micro-programs are pushed through all four timing models; whatever
the program, the structural invariants must hold: everything commits
exactly once, no deadlock, redundancy never beats the redundancy-free
machine, and fault-free DIE runs never flag mismatches.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MachineConfig
from repro.isa import Opcode, int_reg
from repro.simulation import simulate

from helpers import assemble
from repro.workloads.executor import FunctionalExecutor

_REGS = [int_reg(i) for i in range(1, 12)]

_alu_op = st.tuples(
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.SLT]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
).map(lambda t: (t[0], t[1], t[2], t[3], 0))

_imm_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(-1000, 1000),
).map(lambda t: (Opcode.ADDI, t[0], t[1], None, t[2]))

_longlat_op = st.tuples(
    st.sampled_from([Opcode.MUL, Opcode.DIV]),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
).map(lambda t: (t[0], t[1], t[2], t[3], 0))

_load_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(0, 30),
).map(lambda t: (Opcode.LOAD, t[0], t[1], None, t[2] * 8))

_store_op = st.tuples(
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.integers(0, 30),
).map(lambda t: (Opcode.STORE, None, t[0], t[1], t[2] * 8))

_any_op = st.one_of(_imm_op, _alu_op, _longlat_op, _load_op, _store_op)

programs = st.lists(_any_op, min_size=1, max_size=30)
loops = st.integers(1, 3)


def _trace_for(ops, loops):
    program = assemble(ops)
    count = (len(ops) + 1) * loops
    return FunctionalExecutor(program).run(count)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=programs, loops=loops)
def test_all_models_commit_everything(ops, loops):
    trace = _trace_for(ops, loops)
    for model in ("sie", "die", "die-irb", "sie-irb"):
        result = simulate(trace, model)
        assert result.stats.committed == len(trace), model


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=programs, loops=loops)
def test_redundancy_never_wins(ops, loops):
    trace = _trace_for(ops, loops)
    sie = simulate(trace, "sie").stats.cycles
    die = simulate(trace, "die").stats.cycles
    die_irb = simulate(trace, "die-irb").stats.cycles
    assert die >= sie
    assert die_irb >= sie
    assert die_irb <= die  # the IRB may only help


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=programs, loops=loops)
def test_fault_free_redundancy_is_clean(ops, loops):
    trace = _trace_for(ops, loops)
    for model in ("die", "die-irb"):
        result = simulate(trace, model)
        assert result.stats.check_mismatches == 0, model
        assert result.stats.pairs_checked == len(trace), model


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=programs,
    ruu=st.sampled_from([8, 32, 128]),
    width=st.sampled_from([2, 8]),
)
def test_tiny_machines_never_deadlock(ops, ruu, width):
    trace = _trace_for(ops, 2)
    config = dataclasses.replace(
        MachineConfig.baseline(),
        ruu_size=ruu,
        lsq_size=max(2, ruu // 2),
        fetch_width=width,
        decode_width=width,
        issue_width=width,
        commit_width=width,
    )
    for model in ("sie", "die", "die-irb"):
        result = simulate(trace, model, config=config)
        assert result.stats.committed == len(trace)
