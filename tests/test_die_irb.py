"""Directed tests for the DIE-IRB pipeline (the paper's contribution)."""


from repro.core import MachineConfig, PRIMARY
from repro.isa import Opcode, int_reg
from repro.redundancy import Fault, FaultInjector
from repro.redundancy.faults import IRB_ENTRY
from repro.reuse import DIEIRBPipeline, IRBConfig
from repro.simulation import simulate

from helpers import addi, assemble
from repro.workloads.executor import FunctionalExecutor

R1, R2, R3 = int_reg(1), int_reg(2), int_reg(3)


def repetitive_trace(iterations=12):
    """A loop whose body repeats operand values every iteration."""
    ops = [addi(R1, 0, 5), addi(R2, 0, 7), (Opcode.ADD, R3, R1, R2, 0)]
    program = assemble(ops)  # + JUMP back: 4 insts per iteration
    return FunctionalExecutor(program).run(4 * iterations)


class TestReuse:
    def test_repetitive_code_reuses(self):
        result = simulate(repetitive_trace(), "die-irb")
        stats = result.stats
        assert stats.irb_lookups == 48
        assert stats.irb_pc_hits > 30
        assert stats.irb_reuse_hits > 25

    def test_reuse_hits_skip_issue_slots(self):
        trace = repetitive_trace()
        die = simulate(trace, "die")
        irb = simulate(trace, "die-irb")
        # Every reuse hit is an instruction the scheduler never selected.
        assert irb.stats.issued == die.stats.issued - irb.stats.irb_reuse_hits

    def test_reuse_reduces_alu_work(self):
        from repro.isa import FUClass

        trace = repetitive_trace(iterations=50)
        die = simulate(trace, "die")
        irb = simulate(trace, "die-irb")
        assert (
            irb.stats.fu_issued[FUClass.INT_ALU]
            < die.stats.fu_issued[FUClass.INT_ALU]
        )

    def test_die_irb_not_slower_than_die(self, gzip_trace):
        die = simulate(gzip_trace, "die").stats.cycles
        irb = simulate(gzip_trace, "die-irb").stats.cycles
        assert irb <= die

    def test_induction_values_never_reuse(self):
        # A counter chain produces fresh values each iteration: no reuse
        # for the accumulating instruction.
        ops = [addi(R1, R1, 1)]
        program = assemble(ops)
        trace = FunctionalExecutor(program).run(24)
        result = simulate(trace, "die-irb")
        # Only the structural JUMP can reuse (constant outcome).
        reuse_pcs = result.stats.irb_reuse_hits
        jump_count = sum(1 for i in trace if i.opcode is Opcode.JUMP)
        assert reuse_pcs <= jump_count


class TestComplexityEffectiveProperties:
    def test_duplicates_wake_from_primary_producers(self):
        trace = repetitive_trace()
        pipeline = DIEIRBPipeline(trace)
        entries = pipeline._hook_make_entries(trace[2], False)
        for entry in entries:
            assert pipeline._hook_source_stream(entry) == PRIMARY

    def test_port_starvation_degrades_to_die(self):
        trace = repetitive_trace()
        no_ports = IRBConfig(read_ports=0, write_ports=2, rw_ports=0)
        result = simulate(trace, "die-irb", irb_config=no_ports)
        assert result.stats.irb_reuse_hits == 0
        assert result.stats.irb_port_starved == result.stats.irb_lookups
        die = simulate(trace, "die")
        assert result.stats.cycles == die.stats.cycles

    def test_lookup_latency_beyond_frontend_delays_reuse(self):
        trace = repetitive_trace(iterations=40)
        fast = simulate(trace, "die-irb", irb_config=IRBConfig(lookup_latency=1))
        slow = simulate(trace, "die-irb", irb_config=IRBConfig(lookup_latency=12))
        assert slow.stats.cycles >= fast.stats.cycles

    def test_name_based_mode_runs_and_reuses_less_or_equal(self, gzip_trace):
        value = simulate(gzip_trace, "die-irb", irb_config=IRBConfig(name_based=False))
        name = simulate(gzip_trace, "die-irb", irb_config=IRBConfig(name_based=True))
        assert name.stats.irb_reuse_hits <= value.stats.irb_reuse_hits


class TestRedundancyProperties:
    def test_corrupted_entry_detected_on_reuse(self):
        trace = repetitive_trace(iterations=30)
        add_pc = 8  # the ADD r3, r1, r2 site
        injector = FaultInjector(
            [Fault(kind=IRB_ENTRY, pc=add_pc, cycle=30)]
        )
        result = simulate(trace, "die-irb", fault_injector=injector)
        assert injector.log.injected == 1
        assert result.stats.check_mismatches >= 1
        assert result.stats.committed == len(trace)

    def test_entry_invalidated_after_mismatch(self):
        # After recovery the pipeline must not re-hit the corrupt entry
        # (that would livelock); detection count stays small.
        trace = repetitive_trace(iterations=30)
        injector = FaultInjector([Fault(kind=IRB_ENTRY, pc=8, cycle=30)])
        result = simulate(trace, "die-irb", fault_injector=injector)
        assert result.stats.check_mismatches <= 2

    def test_fault_free_run_is_clean(self, gzip_trace):
        result = simulate(gzip_trace, "die-irb")
        assert result.stats.check_mismatches == 0


class TestCommitSideUpdates:
    def test_irb_writes_happen_at_commit(self):
        trace = repetitive_trace(iterations=6)
        result = simulate(trace, "die-irb")
        assert result.stats.irb_writes > 0

    def test_reuse_hits_do_not_rewrite_entries(self):
        # Steady-state loop: once everything hits, installs stop.
        trace = repetitive_trace(iterations=60)
        result = simulate(trace, "die-irb")
        assert result.stats.irb_writes < len(trace) // 2

    def test_scaled_machine_composes_with_irb(self, gzip_trace):
        config = MachineConfig.baseline().scaled(alu=2)
        result = simulate(gzip_trace, "die-irb", config=config)
        base = simulate(gzip_trace, "die-irb")
        assert result.ipc >= base.ipc
