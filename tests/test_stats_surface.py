"""Directed tests for the SimStats surface the suite left uncovered:
``fu_utilization`` edge cases, the dict round-trips, and the four stall
counters driven by forced structural pressure."""

import dataclasses

import pytest

from repro.campaign.store import stats_from_dict, stats_to_dict
from repro.core import MachineConfig, SimStats
from repro.isa import FUClass
from repro.simulation import run_workload


class TestFuUtilization:
    def test_zero_cycles_is_zero(self):
        stats = SimStats()
        stats.fu_busy_cycles[FUClass.INT_ALU] = 50
        assert stats.fu_utilization(FUClass.INT_ALU, 4) == 0.0

    def test_zero_units_is_zero_not_division_error(self):
        stats = SimStats(cycles=100)
        stats.fu_busy_cycles[FUClass.INT_ALU] = 50
        assert stats.fu_utilization(FUClass.INT_ALU, 0) == 0.0

    def test_unused_class_is_zero(self):
        stats = SimStats(cycles=100)
        assert stats.fu_utilization(FUClass.FP_ADD, 2) == 0.0

    def test_mean_over_unit_count(self):
        stats = SimStats(cycles=100)
        stats.fu_busy_cycles[FUClass.INT_ALU] = 50
        assert stats.fu_utilization(FUClass.INT_ALU, 1) == pytest.approx(0.5)
        assert stats.fu_utilization(FUClass.INT_ALU, 2) == pytest.approx(0.25)

    def test_count_fu_issue_accumulates_busy(self):
        stats = SimStats(cycles=10)
        stats.count_fu_issue(FUClass.INT_MULDIV, busy=4)
        stats.count_fu_issue(FUClass.INT_MULDIV, busy=4)
        assert stats.fu_issued[FUClass.INT_MULDIV] == 2
        assert stats.fu_utilization(FUClass.INT_MULDIV, 1) == pytest.approx(0.8)


class TestDictRoundTrip:
    def test_to_dict_names_fu_classes_and_adds_ratios(self):
        stats = SimStats(cycles=10, committed=20, branches=4, mispredicts=1)
        stats.count_fu_issue(FUClass.INT_ALU)
        payload = stats.to_dict()
        assert payload["fu_issued"] == {"INT_ALU": 1}
        assert payload["ipc"] == pytest.approx(2.0)
        assert payload["mispredict_rate"] == pytest.approx(0.25)
        assert payload["irb_reuse_rate"] == 0.0  # no lookups: no div-by-zero

    def test_store_round_trip_restores_enum_keys(self):
        stats = SimStats(cycles=7, committed=3, dispatch_stall_ruu=2)
        stats.count_fu_issue(FUClass.FP_MULDIV, busy=3)
        rebuilt = stats_from_dict(stats_to_dict(stats))
        assert rebuilt == stats
        assert FUClass.FP_MULDIV in rebuilt.fu_issued

    def test_missing_fields_keep_defaults(self):
        rebuilt = stats_from_dict({"cycles": 5})
        assert rebuilt.cycles == 5
        assert rebuilt.committed == 0 and rebuilt.fu_issued == {}


class TestStallCounters:
    """Each counter under a configuration that forces that stall."""

    N = 3_000

    def test_tiny_ruu_forces_dispatch_stall_ruu(self):
        config = dataclasses.replace(MachineConfig.baseline(), ruu_size=8)
        pressured = run_workload("gzip", n_insts=self.N, config=config).stats
        roomy = run_workload("gzip", n_insts=self.N).stats
        assert pressured.dispatch_stall_ruu > 0
        assert pressured.dispatch_stall_ruu > roomy.dispatch_stall_ruu

    def test_tiny_lsq_forces_dispatch_stall_lsq(self):
        config = dataclasses.replace(MachineConfig.baseline(), lsq_size=1)
        pressured = run_workload("gzip", n_insts=self.N, config=config).stats
        assert pressured.dispatch_stall_lsq > 0

    def test_cold_icache_forces_fetch_stall_icache(self):
        cold = run_workload("gzip", n_insts=self.N, warmup=False).stats
        warm = run_workload("gzip", n_insts=self.N, warmup=True).stats
        assert cold.fetch_stall_icache > 0
        assert cold.fetch_stall_icache >= warm.fetch_stall_icache

    def test_cold_predictor_forces_fetch_stall_mispredict(self):
        # gcc is the branchiest workload; a cold predictor must mispredict.
        cold = run_workload("gcc", n_insts=self.N, warmup=False).stats
        assert cold.mispredicts > 0
        assert cold.fetch_stall_mispredict > 0

    def test_stall_counters_survive_the_store_round_trip(self):
        config = dataclasses.replace(
            MachineConfig.baseline(), ruu_size=8, lsq_size=1
        )
        stats = run_workload("gzip", n_insts=self.N, config=config).stats
        rebuilt = stats_from_dict(stats_to_dict(stats))
        for name in (
            "fetch_stall_mispredict",
            "fetch_stall_icache",
            "dispatch_stall_ruu",
            "dispatch_stall_lsq",
        ):
            assert getattr(rebuilt, name) == getattr(stats, name)
