"""Tests for the campaign harness (repro.campaign).

The heart of the subsystem's contract:

* determinism — the same job set at ``jobs_n=1`` and ``jobs_n=4``
  yields byte-identical statistics in identical order;
* the store round-trips every ``SimStats`` field;
* keys are sensitive to every part of the spec and stable across
  processes.
"""

import dataclasses
import json

import pytest

from repro.campaign import (
    CODE_VERSION,
    Job,
    Provenance,
    ResultStore,
    campaign_context,
    current_context,
    job_key,
    job_spec,
    run_campaign,
    stats_from_dict,
    stats_to_dict,
)
from repro.core import MachineConfig, SimStats
from repro.isa import FUClass
from repro.redundancy import EXEC_PRIMARY, Fault
from repro.reuse import IRBConfig
from repro.simulation import sweep_jobs

N = 3000  # small enough for CI, large enough for non-trivial stats


def small_jobs():
    return [
        Job("gzip", N, model="sie"),
        Job("gzip", N, model="die"),
        Job("gzip", N, model="die-irb", irb_config=IRBConfig(entries=256)),
        Job("ammp", N, model="sie"),
        Job("gzip", N, model="sie"),  # duplicate of job 0
    ]


def stats_dicts(outcome):
    return [r.stats.to_dict() for r in outcome.results]


class TestJob:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            Job("gzip", N, model="warp")

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            Job("gzip", 0)

    def test_faults_coerced_to_tuple(self):
        job = Job("gzip", N, model="die", faults=[Fault(EXEC_PRIMARY, seq=5)])
        assert isinstance(job.faults, tuple)

    def test_trace_key_groups_variants(self):
        a = Job("gzip", N, model="sie")
        b = Job("gzip", N, model="die")
        assert a.trace_key == b.trace_key == ("gzip", N, 1)


class TestKeys:
    def test_key_is_stable(self):
        assert job_key(Job("gzip", N)) == job_key(Job("gzip", N))

    def test_key_changes_with_every_spec_field(self):
        base = Job("gzip", N, model="die-irb")
        variants = [
            Job("ammp", N, model="die-irb"),
            Job("gzip", N + 1, model="die-irb"),
            Job("gzip", N, model="die-irb", seed=2),
            Job("gzip", N, model="die"),
            Job("gzip", N, model="die-irb", config=MachineConfig.baseline().scaled(alu=2)),
            Job("gzip", N, model="die-irb", irb_config=IRBConfig(entries=512)),
            Job("gzip", N, model="die-irb", faults=(Fault(EXEC_PRIMARY, seq=1),)),
            Job("gzip", N, model="die-irb", warmup=False),
            Job("gzip", N, model="die-irb", max_cycles=10),
        ]
        keys = {job_key(v) for v in variants}
        assert job_key(base) not in keys
        assert len(keys) == len(variants), "two distinct specs collided"

    def test_key_changes_with_any_machine_config_field(self):
        base_cfg = MachineConfig.baseline()
        base_key = job_key(Job("gzip", N, config=base_cfg))
        for f in dataclasses.fields(MachineConfig):
            if f.name in ("hierarchy", "predictor"):
                continue
            bumped = dataclasses.replace(base_cfg, **{f.name: getattr(base_cfg, f.name) + 1})
            assert job_key(Job("gzip", N, config=bumped)) != base_key, f.name

    def test_key_salted_with_code_version(self):
        spec = job_spec(Job("gzip", N))
        assert spec["__code_version__"] == CODE_VERSION

    def test_default_config_distinct_from_explicit_baseline(self):
        # None means "baseline" semantically, but the spec records the
        # difference; both are stable, which is all the store needs.
        implicit = job_key(Job("gzip", N))
        explicit = job_key(Job("gzip", N, config=MachineConfig.baseline()))
        assert implicit != explicit


class TestStoreRoundTrip:
    def test_stats_round_trip_preserves_every_field(self):
        outcome = run_campaign([Job("gzip", N, model="die-irb")])
        stats = outcome.results[0].stats
        assert stats.irb_lookups > 0  # exercise the FU/IRB dicts
        rebuilt = stats_from_dict(stats_to_dict(stats))
        for f in dataclasses.fields(SimStats):
            assert getattr(rebuilt, f.name) == getattr(stats, f.name), f.name

    def test_fu_dict_keys_survive_as_enums(self):
        stats = SimStats(cycles=10, committed=8)
        stats.count_fu_issue(FUClass.INT_ALU)
        rebuilt = stats_from_dict(stats_to_dict(stats))
        assert rebuilt.fu_issued == {FUClass.INT_ALU: 1}

    def test_store_get_put(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N)
        assert store.get_job(job) is None
        stats = SimStats(cycles=100, committed=50)
        store.put(job, stats, Provenance("run", 1.5, CODE_VERSION))
        found = store.get_job(job)
        assert found is not None
        got_stats, provenance = found
        assert got_stats.cycles == 100 and got_stats.committed == 50
        assert provenance.source == "store"
        assert provenance.wall_time_s == 1.5
        assert provenance.code_version == CODE_VERSION

    def test_store_document_is_json_with_spec(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N, model="die")
        key = store.put(job, SimStats(cycles=1, committed=1), Provenance("run", 0.0, CODE_VERSION))
        document = json.loads(store.path_for(key).read_text())
        assert document["key"] == key
        assert document["spec"]["model"] == "die"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N)
        key = store.put(job, SimStats(cycles=1, committed=1), Provenance("run", 0.0, CODE_VERSION))
        store.path_for(key).write_text("{ truncated")
        assert store.get(key) is None

    def test_clear_and_len(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for model in ("sie", "die"):
            store.put(Job("gzip", N, model=model), SimStats(cycles=1, committed=1),
                      Provenance("run", 0.0, CODE_VERSION))
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestDeterminism:
    def test_serial_and_parallel_identical(self):
        jobs = small_jobs()
        serial = run_campaign(jobs, jobs_n=1)
        parallel = run_campaign(jobs, jobs_n=4)
        assert stats_dicts(serial) == stats_dicts(parallel)

    def test_result_order_matches_submission_order(self):
        jobs = small_jobs()
        outcome = run_campaign(jobs, jobs_n=4)
        assert [r.job for r in outcome.results] == jobs

    def test_duplicate_jobs_simulate_once(self):
        jobs = small_jobs()  # job 4 duplicates job 0
        outcome = run_campaign(jobs, jobs_n=1)
        assert outcome.executed == 4
        assert outcome.deduped == 1
        assert (
            outcome.results[0].stats.to_dict() == outcome.results[4].stats.to_dict()
        )

    def test_matches_direct_simulation(self):
        from repro.simulation import get_trace, simulate

        outcome = run_campaign([Job("gzip", N, model="die")], jobs_n=1)
        direct = simulate(get_trace("gzip", N, 1), model="die")
        assert outcome.results[0].stats.to_dict() == direct.stats.to_dict()


class TestStoreBackedCampaign:
    def test_second_run_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        jobs = small_jobs()
        first = run_campaign(jobs, jobs_n=1, store=store)
        assert first.executed == 4 and first.store_hits == 0
        second = run_campaign(jobs, jobs_n=4, store=store)
        assert second.executed == 0
        assert second.store_hits == len(jobs)
        assert stats_dicts(first) == stats_dicts(second)

    def test_store_results_marked_with_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        jobs = [Job("gzip", N)]
        fresh = run_campaign(jobs, store=store).results[0]
        assert not fresh.from_store
        assert fresh.provenance.wall_time_s > 0
        replay = run_campaign(jobs, store=store).results[0]
        assert replay.from_store

    def test_progress_called_for_every_job(self, tmp_path):
        seen = []
        run_campaign(
            small_jobs(),
            store=ResultStore(tmp_path / "store"),
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert seen == [(i, 5) for i in range(1, 6)]


class TestCampaignContext:
    def test_context_installs_and_restores(self):
        assert current_context() is None
        with campaign_context(jobs_n=2) as context:
            assert current_context() is context
        assert current_context() is None

    def test_run_campaign_uses_ambient_context(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with campaign_context(jobs_n=1, store=store) as context:
            run_campaign([Job("gzip", N)])
            assert context.executed == 1
            run_campaign([Job("gzip", N)])
            assert context.store_hits == 1

    def test_experiment_registry_plumbing(self, tmp_path):
        from repro.experiments import get_experiment

        store = ResultStore(tmp_path / "store")
        experiment = get_experiment("F5")
        first = experiment.run(apps=("gzip",), n_insts=N, parallel=2, store=store)
        assert store.writes > 0
        again = experiment.run(apps=("gzip",), n_insts=N, parallel=2, store=store)
        assert [r.sie_ipc for r in again.entries] == [r.sie_ipc for r in first.entries]
        assert store.hits >= store.writes


class TestSweepJobs:
    def test_sweep_jobs_product_order(self, tmp_path):
        results = sweep_jobs(
            [("model", ["sie", "die"]), ("seed", [1, 2])],
            lambda model, seed: Job("gzip", N, model=model, seed=seed),
            jobs_n=1,
            store=ResultStore(tmp_path / "store"),
        )
        assert [r.params for r in results] == [
            {"model": "sie", "seed": 1},
            {"model": "sie", "seed": 2},
            {"model": "die", "seed": 1},
            {"model": "die", "seed": 2},
        ]
        for r in results:
            assert r.value.stats.committed == N


class TestFaultJobs:
    def test_fault_plan_runs_and_keys(self):
        plan = (Fault(EXEC_PRIMARY, seq=100),)
        job = Job("gzip", N, model="die", faults=plan)
        outcome = run_campaign([job], jobs_n=1)
        assert outcome.results[0].stats.faults_injected == 1
        assert job_key(job) != job_key(Job("gzip", N, model="die"))


class TestCrashDurability:
    """Torn writes must never surface as store entries (satellite of the
    service tier's fsync-hardened write path)."""

    def test_truncated_temp_file_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = Job("gzip", N)
        key = store.put(job, SimStats(cycles=1, committed=1), Provenance("run", 0.1, CODE_VERSION))
        # Simulate a writer that died between mkstemp and os.replace:
        # its temp file sits in the shard dir next to the real entry.
        shard = store.path_for(key).parent
        torn = shard / ".tmp-deadbeef.json"
        torn.write_text('{"format": 1, "stats": {"cyc')
        # The entry itself still reads; the torn temp file is invisible.
        assert store.get(key) is not None
        assert list(store.keys()) == [key]
        assert store.backend.temp_files() == [torn]
        # A torn *entry* (crash during a non-atomic overwrite, or disk
        # corruption) reads as a miss rather than raising.
        store.path_for(key).write_text('{"format": 1, "stats"')
        assert store.get(key) is None
        assert store.misses >= 1

    def test_gc_reclaims_torn_temp_files(self, tmp_path):
        from repro.service.maintenance import collect_garbage

        store = ResultStore(tmp_path)
        key = store.put(
            Job("gzip", N), SimStats(cycles=1, committed=1), Provenance("run", 0.1, CODE_VERSION)
        )
        torn = store.path_for(key).parent / ".tmp-crashed.json"
        torn.write_text("{ half a document")
        report = collect_garbage(store.backend)
        assert report.tmp_removed == 1
        assert not torn.exists()
        assert store.get(key) is not None


class TestConcurrentWriters:
    def test_same_key_two_processes_one_durable_entry(self, tmp_path):
        """Two processes racing to put the same key must leave exactly one
        well-formed entry (last rename wins; both wrote identical stats)."""
        import os

        job = Job("gzip", N)
        stats = SimStats(cycles=777, committed=N)
        barrier_dir = tmp_path / "ready"
        barrier_dir.mkdir()

        children = []
        for who in ("a", "b"):
            pid = os.fork()
            if pid == 0:  # child
                status = 1
                try:
                    (barrier_dir / who).touch()
                    # Crude two-process barrier: start writing together.
                    for _ in range(500):
                        if len(list(barrier_dir.iterdir())) == 2:
                            break
                    store = ResultStore(tmp_path / "store")
                    for _ in range(20):
                        store.put(job, stats, Provenance("run", 0.1, CODE_VERSION))
                    status = 0
                finally:
                    os._exit(status)
            children.append(pid)

        for pid in children:
            _, exit_status = os.waitpid(pid, 0)
            assert exit_status == 0

        store = ResultStore(tmp_path / "store")
        key = job_key(job)
        assert list(store.keys()) == [key]
        loaded = store.get(key)
        assert loaded is not None
        assert loaded[0].to_dict() == stats.to_dict()
        # No temp-file litter from either writer.
        assert store.backend.temp_files() == []
