"""Unit and property tests for caches, DRAM and the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    Cache,
    CacheConfig,
    DRAM,
    DRAMConfig,
    HierarchyConfig,
    MemoryHierarchy,
)


def small_cache(ways=2, sets=4, line=64):
    return Cache(
        CacheConfig(
            name="t", size_bytes=ways * sets * line, line_bytes=line, ways=ways
        )
    )


class TestCacheConfig:
    def test_sets_derivation(self):
        config = CacheConfig(name="t", size_bytes=32 * 1024, line_bytes=64, ways=4)
        assert config.sets == 128

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheConfig(name="t", size_bytes=1024, line_bytes=48)

    def test_rejects_cache_smaller_than_set(self):
        with pytest.raises(ValueError):
            CacheConfig(name="t", size_bytes=64, line_bytes=64, ways=2)


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert cache.probe(0x1000)
        assert cache.probe(0x1038)  # same 64B line

    def test_distinct_lines_miss_independently(self):
        cache = small_cache()
        cache.probe(0x0)
        assert not cache.probe(0x40)

    def test_lru_within_set(self):
        cache = small_cache(ways=2, sets=1)
        cache.probe(0x000)
        cache.probe(0x040)
        cache.probe(0x000)  # refresh
        cache.probe(0x080)  # evicts 0x040
        assert cache.contains(0x000)
        assert not cache.contains(0x040)

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.probe(0x0, is_write=True)
        cache.probe(0x40)  # evicts dirty line
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.probe(0x0)
        cache.probe(0x40)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.probe(0x0)
        cache.probe(0x8, is_write=True)
        cache.probe(0x40)
        assert cache.stats.writebacks == 1

    def test_flush_invalidates_but_keeps_stats(self):
        cache = small_cache()
        cache.probe(0x0)
        cache.flush()
        assert not cache.contains(0x0)
        assert cache.stats.accesses == 1

    def test_reset_stats_keeps_contents(self):
        cache = small_cache()
        cache.probe(0x0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.contains(0x0)

    def test_capacity_honored(self):
        cache = small_cache(ways=2, sets=4)
        for i in range(100):
            cache.probe(i * 64)
        resident = sum(1 for i in range(100) if cache.contains(i * 64))
        assert resident <= 8

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_matches_reference_lru_model(self, line_ids):
        """The cache must agree with a straightforward LRU reference."""
        ways, sets = 2, 4
        cache = small_cache(ways=ways, sets=sets)
        reference = {index: [] for index in range(sets)}
        for line_id in line_ids:
            addr = line_id * 64
            index = line_id % sets
            expected_hit = line_id in reference[index]
            assert cache.probe(addr) == expected_hit
            if expected_hit:
                reference[index].remove(line_id)
            reference[index].insert(0, line_id)
            del reference[index][ways:]


class TestDRAM:
    def test_unloaded_latency(self):
        dram = DRAM(DRAMConfig(latency=100, gap=4))
        assert dram.access(now=10) == 100

    def test_bandwidth_queueing(self):
        dram = DRAM(DRAMConfig(latency=100, gap=10))
        assert dram.access(now=0) == 100
        # second request at the same instant waits one gap
        assert dram.access(now=0) == 110
        assert dram.access(now=0) == 120

    def test_idle_gap_resets_queue(self):
        dram = DRAM(DRAMConfig(latency=100, gap=10))
        dram.access(now=0)
        assert dram.access(now=50) == 100

    def test_queue_stats(self):
        dram = DRAM(DRAMConfig(latency=100, gap=10))
        dram.access(0)
        dram.access(0)
        assert dram.mean_queue_delay == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(latency=0)
        with pytest.raises(ValueError):
            DRAMConfig(gap=-1)


class TestHierarchy:
    def test_l1_hit_is_cheap(self):
        hier = MemoryHierarchy()
        hier.load(0x1000, 0)
        assert hier.load(0x1008, 1) == hier.l1d.config.hit_latency

    def test_miss_costs_accumulate(self):
        hier = MemoryHierarchy()
        cold = hier.load(0x5000, 0)
        expected_min = (
            hier.l1d.config.hit_latency
            + hier.l2.config.hit_latency
            + hier.dram.config.latency
        )
        assert cold >= expected_min

    def test_l2_hit_after_l1_eviction(self):
        config = HierarchyConfig()
        hier = MemoryHierarchy(config)
        hier.load(0x0, 0)
        # Blow the L1 set: same L1 set index, distinct lines.
        l1 = hier.l1d.config
        stride = l1.sets * l1.line_bytes
        for i in range(1, l1.ways + 1):
            hier.load(i * stride, 0)
        latency = hier.load(0x0, 0)
        assert latency == l1.hit_latency + hier.l2.config.hit_latency

    def test_fetch_uses_icache(self):
        hier = MemoryHierarchy()
        hier.fetch(0x100, 0)
        assert hier.l1i.stats.accesses == 1
        assert hier.l1d.stats.accesses == 0

    def test_reset_stats_cascades(self):
        hier = MemoryHierarchy()
        hier.load(0x100, 0)
        hier.fetch(0x100, 0)
        hier.reset_stats()
        assert hier.l1d.stats.accesses == 0
        assert hier.l1i.stats.accesses == 0
        assert hier.dram.requests == 0
