"""Edge cases and small-surface coverage across modules."""

import dataclasses

import pytest

from repro.core import DUPLICATE, DynInst, MachineConfig, PRIMARY
from repro.isa import Opcode, int_reg
from repro.redundancy import DIEPipeline
from repro.simulation import simulate
from repro.workloads import generate_program, get_profile

from helpers import addi, assemble, straightline

R1, R2 = int_reg(1), int_reg(2)


class TestDIEWidthGuard:
    def test_die_rejects_single_wide_commit(self, gzip_trace):
        config = dataclasses.replace(MachineConfig.baseline(), commit_width=1)
        with pytest.raises(ValueError, match="pairs"):
            DIEPipeline(gzip_trace, config)

    def test_die_rejects_single_wide_decode(self, gzip_trace):
        config = dataclasses.replace(MachineConfig.baseline(), decode_width=1)
        with pytest.raises(ValueError, match="pairs"):
            DIEPipeline(gzip_trace, config)

    def test_die_accepts_width_two(self):
        trace = straightline([addi(R1, 0, 1), addi(R2, 0, 2)])
        config = dataclasses.replace(
            MachineConfig.baseline(),
            fetch_width=2,
            decode_width=2,
            issue_width=2,
            commit_width=2,
        )
        result = simulate(trace, "die", config=config)
        assert result.stats.committed == 2


class TestProgramIntrospection:
    def test_listing_renders_disassembly(self):
        program = generate_program(get_profile("gzip"))
        text = program.listing(0, 5)
        assert "ADDI" in text
        assert text.count("\n") == 4

    def test_array_for(self):
        program = generate_program(get_profile("gzip"))
        table = next(a for a in program.arrays if a.name == "table")
        assert program.array_for(table.base) is table
        assert program.array_for(0) is None

    def test_static_inst_str_shows_target(self):
        program = assemble([(Opcode.JUMP, None, None, None, 0, 0)])
        assert "->" in str(program.insts[0])

    def test_trace_inst_str(self):
        trace = straightline([addi(R1, 0, 1)])
        assert "ADDI" in str(trace[0])


class TestDynInstRepr:
    def test_repr_shows_state(self):
        trace = straightline([addi(R1, 0, 1)])
        inst = DynInst(trace[0], PRIMARY)
        assert "wait" in repr(inst)
        inst.issued = True
        assert "issued" in repr(inst)
        inst.complete = True
        assert "done" in repr(inst)

    def test_repr_tags_streams(self):
        trace = straightline([addi(R1, 0, 1)])
        assert "<DynInst P0" in repr(DynInst(trace[0], PRIMARY))
        assert "<DynInst D0" in repr(DynInst(trace[0], DUPLICATE))


class TestConfigScaling:
    def test_scaling_is_multiplicative(self):
        config = MachineConfig.baseline().scaled(alu=3)
        assert config.int_alu == 12

    def test_scaling_preserves_hierarchy(self):
        base = MachineConfig.baseline()
        scaled = base.scaled(ruu=2)
        assert scaled.hierarchy is base.hierarchy


class TestPredictorBounds:
    def test_always_taken_and_not_taken(self):
        from repro.branch import make_predictor

        taken = make_predictor("taken")
        nottaken = make_predictor("nottaken")
        assert taken.predict(0x100) is True
        assert nottaken.predict(0x100) is False
        taken.update(0x100, True, True)
        nottaken.update(0x100, True, False)
        assert taken.stats.accuracy == 1.0
        assert nottaken.stats.accuracy == 0.0

    def test_static_predictors_run_a_pipeline(self, gzip_trace):
        for kind in ("taken", "nottaken", "bimodal", "gshare", "perfect"):
            config = dataclasses.replace(MachineConfig.baseline(), predictor=kind)
            result = simulate(gzip_trace, "sie", config=config)
            assert result.stats.committed == len(gzip_trace)

    def test_perfect_predictor_never_mispredicts(self, gzip_trace):
        config = dataclasses.replace(MachineConfig.baseline(), predictor="perfect")
        result = simulate(gzip_trace, "sie", config=config)
        assert result.stats.mispredicts == 0


class TestCallReturnPipeline:
    def test_call_ret_flow_through_all_models(self):
        ops = [
            (Opcode.JUMP, None, None, None, 0, 12),
            addi(R1, 0, 7),  # helper body, pc 4
            (Opcode.RET, None, int_reg(31), None, 0),  # pc 8
            (Opcode.CALL, int_reg(31), None, None, 0, 4),  # pc 12
            addi(R2, 0, 9),  # pc 16
        ]
        trace = straightline(ops, count=5)
        for model in ("sie", "die", "die-irb"):
            result = simulate(trace, model)
            assert result.stats.committed == 5, model

    def test_ras_predicts_returns_after_warmup(self):
        ops = [
            (Opcode.JUMP, None, None, None, 0, 12),
            addi(R1, 0, 7),
            (Opcode.RET, None, int_reg(31), None, 0),
            (Opcode.CALL, int_reg(31), None, None, 0, 4),
            addi(R2, 0, 9),
        ]
        trace = straightline(ops, count=5 * 8 + 6)  # several loops
        result = simulate(trace, "sie")
        # Steady state: CALL/RET/JUMP all predicted.
        assert result.stats.mispredict_rate < 0.25
