"""SL002 fixture: declared counters, all written; property reads allowed."""

from dataclasses import dataclass


@dataclass
class PipeStats:
    lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class Model:
    def __init__(self):
        self.stats = PipeStats()

    def probe(self, hit: bool) -> None:
        self.stats.lookups += 1
        if hit:
            self.stats.hits += 1

    def report(self) -> float:
        return self.stats.hit_rate
