"""Fuzz-harness lists that no longer match the registry."""

# "dup" (STREAMS == 2, calls the checker) is missing from both lists,
# and "legacy" names a model that was never registered.
REDUNDANT_MODELS = ("legacy",)
PAIR_CHECKED_MODELS = ()


def run_model(trace, model):
    return model


def smoke():
    return run_model([], "ghost")
