"""SL100 known-bad: pragmas that suppress nothing."""


def compute(values):
    total = 0  # simlint: disable=SL001
    for value in values:
        total += value  # simlint: disable=SL002,SL005
    return total
