"""SL101 known-bad: a duplicate-stream value crosses into primary state.

The flow is deliberately interprocedural *and* cross-module: the value
is read from the duplicate here and stored into architectural state by
a helper in ``sink.py`` — only whole-project taint propagation sees it.
"""

from .sink import commit_value


class LeakyPipeline:
    def _forward_from_duplicate(self, inst):
        duplicate = inst.pair
        if duplicate is None:
            return
        value = duplicate.result
        commit_value(inst, value)
