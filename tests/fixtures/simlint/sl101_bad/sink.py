"""Helper whose store is only a leak given its callers' taint."""


def commit_value(inst, value):
    inst.result = value
