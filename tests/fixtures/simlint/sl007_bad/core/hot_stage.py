"""SL007 fixture: stage methods re-resolving opcode facts every cycle."""

from ...isa import op_latency, op_timing


class Pipeline:
    def _issue(self, inst, cycle):
        timing = op_timing(inst.opcode)  # per-cycle dictionary probe
        return cycle + timing.latency

    def _complete(self, inst, cycle):
        import repro.isa as isa

        return cycle + isa.op_latency(inst.opcode)  # attribute form


def helper(inst):
    # Module-level helpers called from stages are just as hot.
    return op_latency(inst.opcode)
