"""SL102 known-good: counter pair, transitive accounting, raise arm."""


class ToyStats:
    hits: int = 0
    misses: int = 0
    replays: int = 0


class CountingPipeline:
    def __init__(self):
        self.stats = ToyStats()

    def _hook_lookup(self, inst):
        if inst.hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1

    def _hook_dispatch(self, inst):
        if inst.ready:
            self.stats.hits += 1
        elif inst.poisoned:
            raise ValueError("poisoned instruction")
        else:
            self._replay(inst)

    def _replay(self, inst):
        # Accounts transitively: the arm calling this is covered.
        self.stats.replays += 1
