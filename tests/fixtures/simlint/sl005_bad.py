"""SL005 fixture: frozen-config mutation, setattr bypass, mutable default."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    width: int = 8


def widen(config: CoreConfig) -> None:
    config.width = 16


def widen_bypass(config: CoreConfig) -> None:
    object.__setattr__(config, "width", 16)


def collect(item, acc=[]):
    acc.append(item)
    return acc
