"""SL100 known-good: the pragma absorbs a real SL001 finding."""

import time


def stamp():
    return time.time()  # simlint: disable=SL001
