"""SL006 fixture: simulator code returns text; callers decide where it goes.

A docstring mentioning print(result) is fine — the rule reads the AST,
not the comments.
"""

from typing import Dict, List


def render(stats: Dict[str, int]) -> str:
    lines: List[str] = [f"{name}: {value}" for name, value in stats.items()]
    return "\n".join(lines)


def static_footprint(blueprint: Dict[str, int]) -> int:
    # Identifiers merely *containing* "print" must not trip the rule.
    return sum(blueprint.values())
