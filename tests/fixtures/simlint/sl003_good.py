"""SL003 fixture: declared fields, properties and methods all resolve."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    width: int = 8
    depth: int = 4

    @property
    def slots(self) -> int:
        return self.width * self.depth

    def describe(self) -> str:
        return f"{self.width}x{self.depth}"


def annotated_read(config: CoreConfig) -> int:
    return config.width + config.slots


class Model:
    def __init__(self, config=None):
        self.config = config if config is not None else CoreConfig()

    def banner(self) -> str:
        return self.config.describe()
