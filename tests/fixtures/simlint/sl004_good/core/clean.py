"""SL004 fixture: base-core code with only downward imports."""

import heapq  # noqa: F401


def bookkeeping_read(inst) -> bool:
    # Reading a pair's bookkeeping flag carries no computed value across
    # streams, so it is allowed even in sphere packages.
    return inst.pair.reuse_hit
