"""SL004 fixture: checker.py is the one sanctioned observation point."""


def check(primary, duplicate) -> bool:
    return primary.output() == duplicate.output()
