"""Suppression fixture: known violations silenced by pragma comments."""

import time
import random


def sanctioned_wall_clock():
    # A calibration helper genuinely needs the host clock.
    return time.time()  # simlint: disable=SL001


def sanctioned_many(acc=[]):  # simlint: disable
    acc.append(random.random())  # simlint: disable=SL001
    return acc
