"""SL001 fixture: the sanctioned patterns — seeded, config-flowing RNG."""

import random


def seeded_instance(seed: int) -> random.Random:
    return random.Random(seed)


def derived_stream(rng: random.Random, name: str) -> random.Random:
    return random.Random(f"{name}:{rng.randrange(1 << 30)}")


def seeded_numpy(np, seed: int):
    return np.random.default_rng(seed)


def draws(rng: random.Random) -> float:
    return rng.random() + rng.randint(0, 7)
