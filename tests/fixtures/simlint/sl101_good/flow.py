"""SL101 known-good: the duplicate's value is only *compared*.

Observation via comparison is the checker's job (and SL004's concern);
no duplicate-derived value is ever stored into primary state, so the
taint engine must stay silent.
"""

from .sink import commit_value


class CheckedPipeline:
    def _check_against_duplicate(self, inst):
        duplicate = inst.pair
        if duplicate is None:
            return False
        agree = duplicate.result == inst.result
        if agree:
            commit_value(inst, self._recompute(inst))
        return agree

    def _recompute(self, inst):
        return inst.trace.value
