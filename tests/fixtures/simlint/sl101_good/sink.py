"""Same helper as the bad twin; harmless with untainted callers."""


def commit_value(inst, value):
    inst.result = value
