"""SL007 fixture: stages reading precomputed DecodedOp fields (clean)."""

from ...isa import op_timing

# Import-time resolution is the sanctioned pattern: run the probe once,
# then index the table from the hot loop.
_TIMING = {op: op_timing(op) for op in ()}


class Pipeline:
    def _issue(self, inst, cycle):
        timing = inst.dec.timing  # plain slot attribute, no re-decode
        return cycle + timing.latency

    def _complete(self, inst, cycle):
        return cycle + inst.dec.timing.latency
