"""SL104 known-good twin of the bad fixture: everything in sync."""


class BasePipeline:
    STREAMS = 1

    def step(self):
        return 0


class DupPipeline(BasePipeline):
    STREAMS = 2

    def __init__(self):
        self.checker = object()

    def _hook_commit(self, inst):
        self.checker.check(inst, inst.pair)


MODELS = {
    "base": BasePipeline,
    "dup": DupPipeline,
}
