"""Harness lists consistent with the registry."""

REDUNDANT_MODELS = ("dup",)
PAIR_CHECKED_MODELS = ("dup",)


def run_model(trace, model):
    return model


def smoke():
    return run_model([], "base")
