"""SL002 fixture: a typo'd counter bump and a dead declared counter."""

from dataclasses import dataclass


@dataclass
class PipeStats:
    lookups: int = 0
    hits: int = 0
    never_written: int = 0  # dead: nothing in this tree ever stores it


class Model:
    def __init__(self):
        self.stats = PipeStats()

    def probe(self, hit: bool) -> None:
        self.stats.lookups += 1
        if hit:
            self.stats.hitz += 1  # typo: declared field is `hits`
