"""SL004 fixture: a base-core module importing redundancy machinery."""

from ..redundancy import checker  # noqa: F401
