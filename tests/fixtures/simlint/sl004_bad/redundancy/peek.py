"""SL004 fixture: pair comparison and cross-stream reads outside checker."""


def sneak_check(primary, duplicate) -> bool:
    return primary.output() == duplicate.output()


def steal_result(inst):
    return inst.pair.result


def steal_output(inst):
    return inst.pair.output()
