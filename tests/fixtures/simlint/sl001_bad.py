"""SL001 fixture: every flavour of non-determinism the rule must catch."""

import random
import time
from random import randint  # noqa: F401  (flagged at the import)


def wall_clock_seed():
    return time.time()


def global_rng_draw():
    return random.random()


def unseeded_instance():
    return random.Random()


def numpy_global(np):
    return np.random.rand(4)
