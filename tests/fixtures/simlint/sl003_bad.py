"""SL003 fixture: reads of config attributes that were never declared."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    width: int = 8
    depth: int = 4


def annotated_read(config: CoreConfig) -> int:
    return config.widht  # typo: declared field is `width`


class Model:
    def __init__(self, config=None):
        self.config = config if config is not None else CoreConfig()

    def stage_count(self) -> int:
        return self.config.n_stages  # never declared on CoreConfig
