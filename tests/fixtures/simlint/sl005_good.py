"""SL005 fixture: replace() for new configs, None-defaulted accumulators."""

from dataclasses import dataclass, replace
from typing import List, Optional


@dataclass(frozen=True)
class CoreConfig:
    width: int = 8


def widen(config: CoreConfig) -> CoreConfig:
    return replace(config, width=config.width * 2)


def collect(item, acc: Optional[List] = None) -> List:
    if acc is None:
        acc = []
    acc.append(item)
    return acc
