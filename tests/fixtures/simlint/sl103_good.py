"""SL103 known-good: the three blessed identity-guard idioms."""

NULL_TRACER = object()


class QuietStage:
    def __init__(self, tracer):
        self.tracer = tracer

    def tick_direct(self, event):
        tracer = self.tracer
        if tracer is not NULL_TRACER:
            tracer.emit(event)

    def tick_alias(self, event):
        tracer = self.tracer
        tracing = tracer is not NULL_TRACER
        if tracing:
            tracer.emit(event)

    def tick_early_exit(self, event):
        tracer = self.tracer
        if tracer is NULL_TRACER:
            return
        tracer.emit(event)
