"""SL103 known-bad: truthiness-guarded and unguarded emit sites."""


class NoisyStage:
    def __init__(self, tracer):
        self.tracer = tracer

    def tick_truthy(self, event):
        tracer = self.tracer
        if tracer:
            tracer.emit(event)

    def tick_unguarded(self, event):
        self.tracer.emit(event)
