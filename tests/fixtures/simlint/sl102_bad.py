"""SL102 known-bad: one arm counts, the sibling arm accounts nothing."""


class ToyStats:
    hits: int = 0
    misses: int = 0


class LossyPipeline:
    def __init__(self):
        self.stats = ToyStats()

    def _hook_lookup(self, inst):
        if inst.hit:
            self.stats.hits += 1
        else:
            self._replay(inst)

    def _replay(self, inst):
        inst.issued = False
