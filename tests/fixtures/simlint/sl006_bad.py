"""SL006 fixture: console output from inside simulator code."""

import logging

from logging import getLogger

log = getLogger(__name__)


def retire(count: int) -> None:
    print(f"retired {count} instructions")
    logging.info("retired %d", count)


def debug_dump(stats: dict) -> None:
    for name, value in stats.items():
        print(name, value)
