"""Tests for the telemetry subsystem: events, metrics, export, profiles.

The single most important property is the identity invariant: attaching
any tracer must not change what the timing model does.  Everything else
— recording, aggregation, export, profile diffing — is validated against
real DIE-IRB runs so the event streams exercised are the ones the
pipelines actually emit.
"""

import json

import pytest

from repro.campaign import Job, ResultStore
from repro.cli import main
from repro.isa import FUClass
from repro.simulation import run_workload
from repro.telemetry import (
    CheckEvent,
    CycleEvent,
    Histogram,
    InstEvent,
    IRBEvent,
    MetricsCollector,
    NULL_TRACER,
    NullTracer,
    ProfileDiff,
    RecordingTracer,
    RunProfile,
    TeeTracer,
    Timeline,
    Tracer,
    build_profile,
    chrome_trace,
    diff_profiles,
    duplicate_service_split,
    load_profile,
    render_pipeview,
    replay,
    save_profile,
    validate_chrome_trace,
)
from repro.telemetry.events import (
    IRB_LOOKUP,
    IRB_PC_HIT,
    IRB_REUSE_HIT,
    STAGE_COMMIT,
    STAGE_COMPLETE,
    STAGE_DISPATCH,
    STAGE_FETCH,
    STAGE_ISSUE,
)

N = 3_000


def traced_run(model="die-irb", workload="gzip", n=N, **kwargs):
    recorder = RecordingTracer()
    collector = MetricsCollector()
    result = run_workload(
        workload, model=model, n_insts=n,
        tracer=TeeTracer(recorder, collector), **kwargs
    )
    return result, recorder, collector


@pytest.fixture(scope="module")
def die_irb_run():
    return traced_run("die-irb")


@pytest.fixture(scope="module")
def sie_run():
    return traced_run("sie")


# ----------------------------------------------------------------------
# Tracer protocol
# ----------------------------------------------------------------------


class TestTracerProtocol:
    def test_null_tracer_is_falsy(self):
        assert not NULL_TRACER
        assert not NullTracer()

    def test_real_tracers_are_truthy(self):
        assert RecordingTracer()
        assert MetricsCollector()
        assert TeeTracer()

    def test_base_tracer_emit_abstract(self):
        with pytest.raises(NotImplementedError):
            Tracer().emit(CycleEvent(0, 0, 0))

    def test_recording_limit_drops_not_raises(self):
        tracer = RecordingTracer(limit=3)
        for cycle in range(5):
            tracer.emit(CycleEvent(cycle, 0, 0))
        assert len(tracer.events) == 3
        assert tracer.dropped == 2

    def test_tee_fans_out_and_skips_falsy(self):
        a, b = RecordingTracer(), RecordingTracer()
        tee = TeeTracer(a, NULL_TRACER, b)
        assert len(tee.tracers) == 2  # null tracer filtered out
        tee.emit(CycleEvent(1, 2, 3))
        assert a.events == b.events == [CycleEvent(1, 2, 3)]

    def test_replay_rebuilds_metrics(self, die_irb_run):
        _, recorder, collector = die_irb_run
        rebuilt = MetricsCollector()
        replay(recorder.events, rebuilt)
        assert rebuilt.snapshot() == collector.snapshot()


# ----------------------------------------------------------------------
# Identity invariant: observation never steers
# ----------------------------------------------------------------------


class TestIdentityInvariant:
    @pytest.mark.parametrize("model", ["sie", "die", "die-irb", "sie-irb"])
    def test_tracer_does_not_change_timing(self, model):
        bare = run_workload("gzip", model=model, n_insts=N)
        traced, _, _ = traced_run(model)
        assert traced.stats.to_dict() == bare.stats.to_dict()


# ----------------------------------------------------------------------
# Event streams from real runs
# ----------------------------------------------------------------------


class TestEventStream:
    def test_lifecycle_stages_all_present(self, die_irb_run):
        _, recorder, _ = die_irb_run
        kinds = {e.kind for e in recorder.events if isinstance(e, InstEvent)}
        for stage in (STAGE_FETCH, STAGE_DISPATCH, STAGE_ISSUE,
                      STAGE_COMPLETE, STAGE_COMMIT):
            assert stage in kinds

    def test_one_cycle_event_per_cycle(self, die_irb_run):
        result, recorder, _ = die_irb_run
        cycles = [e.cycle for e in recorder.events if isinstance(e, CycleEvent)]
        assert len(cycles) == result.stats.cycles
        assert cycles == sorted(cycles)

    def test_die_emits_both_streams_and_checks(self, die_irb_run):
        result, recorder, _ = die_irb_run
        streams = {e.stream for e in recorder.events if isinstance(e, InstEvent)}
        assert streams == {0, 1}
        checks = [e for e in recorder.events if isinstance(e, CheckEvent)]
        assert len(checks) == result.stats.pairs_checked
        assert all(c.ok for c in checks)  # no faults injected

    def test_irb_funnel_is_ordered(self, die_irb_run):
        result, recorder, _ = die_irb_run
        irb = [e for e in recorder.events if isinstance(e, IRBEvent)]
        by_kind = {}
        for e in irb:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        assert by_kind[IRB_LOOKUP] == result.stats.irb_lookups
        assert by_kind[IRB_PC_HIT] == result.stats.irb_pc_hits
        assert by_kind[IRB_REUSE_HIT] == result.stats.irb_reuse_hits
        # The funnel narrows: lookups >= pc hits >= reuse hits > 0.
        assert (by_kind[IRB_LOOKUP] >= by_kind[IRB_PC_HIT]
                >= by_kind[IRB_REUSE_HIT] > 0)

    def test_sie_has_single_stream_no_checks(self, sie_run):
        _, recorder, _ = sie_run
        streams = {e.stream for e in recorder.events if isinstance(e, InstEvent)}
        assert streams == {0}
        assert not any(isinstance(e, CheckEvent) for e in recorder.events)

    def test_events_are_frozen(self):
        event = CycleEvent(1, 2, 3)
        with pytest.raises(Exception):
            event.cycle = 9


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.mean == 0.0 and h.min == 0 and h.max == 0
        assert h.percentile(0.5) == 0
        assert h.summary()["count"] == 0

    def test_moments_and_percentiles(self):
        h = Histogram()
        for v in (1, 2, 2, 3, 10):
            h.add(v)
        assert h.total == 5
        assert h.mean == pytest.approx(3.6)
        assert (h.min, h.max) == (1, 10)
        assert h.percentile(0.5) == 2
        assert h.percentile(0.99) == 10

    def test_weighted_add_and_round_trip(self):
        h = Histogram()
        h.add(4, weight=3)
        assert h.total == 3 and h.mean == 4.0
        assert h.to_dict()["counts"] == {"4": 3}


class TestTimeline:
    def test_stride_keeps_every_kth_but_exact_stats(self):
        t = Timeline(stride=4)
        for cycle in range(10):
            t.sample(cycle, cycle)
        assert [c for c, _ in t.samples] == [0, 4, 8]
        assert t.mean == pytest.approx(4.5)  # over all 10, not the kept 3
        assert t.peak == 9

    def test_series_decimates_to_max_points(self):
        t = Timeline()
        for cycle in range(1000):
            t.sample(cycle, 1)
        assert len(t.series(max_points=64)) == 64
        assert len(t.summary(64)["series"]) == 64

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            Timeline(stride=0)


class TestMetricsCollector:
    def test_occupancy_tracks_every_cycle(self, die_irb_run):
        result, _, collector = die_irb_run
        assert collector.cycles_observed == result.stats.cycles
        assert collector.ruu_occupancy.mean > 0
        assert collector.ruu_occupancy.peak <= result.pipeline.config.ruu_size

    def test_issue_bandwidth_split_covers_all_cycles(self, die_irb_run):
        result, _, collector = die_irb_run
        assert collector.issue_bw_primary.total == result.stats.cycles
        assert collector.issue_bw_duplicate.total == result.stats.cycles
        # Reuse hits bypass issue, so the duplicate stream issues less.
        assert (collector.issue_bw_duplicate.mean
                < collector.issue_bw_primary.mean)

    def test_reuse_distance_positive(self, die_irb_run):
        _, _, collector = die_irb_run
        assert collector.reuse_distance.total > 0
        assert collector.reuse_distance.min >= 1

    def test_opcode_breakdown_narrows(self, die_irb_run):
        _, _, collector = die_irb_run
        assert collector.opcode_reuse
        for bucket in collector.opcode_reuse.values():
            assert bucket["lookups"] >= bucket["pc_hits"] >= bucket["reuse_hits"]

    def test_check_latency_measured_for_die(self, die_irb_run):
        result, _, collector = die_irb_run
        assert collector.check_latency.total > 0
        assert collector.check_latency.min >= 1
        assert collector.checks_ok == result.stats.pairs_checked

    def test_sie_has_no_duplicate_activity(self, sie_run):
        _, _, collector = sie_run
        assert collector.issue_bw_duplicate.mean == 0.0
        assert collector.check_latency.total == 0
        assert duplicate_service_split(collector) is None

    def test_duplicate_service_split(self, die_irb_run):
        _, _, collector = die_irb_run
        split = duplicate_service_split(collector)
        assert split is not None
        assert split["irb_reused"] > 0
        assert 0.0 < split["reused_fraction"] < 1.0

    def test_snapshot_is_json_ready(self, die_irb_run):
        _, _, collector = die_irb_run
        snap = collector.snapshot(max_points=32)
        assert json.loads(json.dumps(snap)) == snap
        assert len(snap["ruu_occupancy"]["series"]) <= 32


# ----------------------------------------------------------------------
# Export: Chrome trace + pipeview
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_document_validates(self, die_irb_run):
        _, recorder, _ = die_irb_run
        doc = chrome_trace(recorder.events, {"workload": "gzip"})
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["workload"] == "gzip"

    def test_tracks_per_stream_and_fu(self, die_irb_run):
        _, recorder, _ = die_irb_run
        doc = chrome_trace(recorder.events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {0, 1}
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas}
        assert {"primary stream", "duplicate stream"} <= names
        assert FUClass.INT_ALU.name in names

    def test_slice_args_carry_stage_cycles(self, die_irb_run):
        _, recorder, _ = die_irb_run
        doc = chrome_trace(recorder.events)
        committed = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and STAGE_COMMIT in e["args"]
        ]
        assert committed
        args = committed[0]["args"]
        assert args[STAGE_FETCH] <= args[STAGE_ISSUE] <= args[STAGE_COMMIT]

    def test_reuse_hits_become_instants(self, die_irb_run):
        result, recorder, _ = die_irb_run
        doc = chrome_trace(recorder.events)
        reuse = [e for e in doc["traceEvents"] if e["name"] == "irb-reuse"]
        assert len(reuse) == result.stats.irb_reuse_hits

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents is empty"
        ]
        bad_phase = {"traceEvents": [{"ph": "Q", "name": "x"}]}
        assert any("unknown phase" in e for e in validate_chrome_trace(bad_phase))
        no_dur = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1}
        ]}
        assert any("dur" in e for e in validate_chrome_trace(no_dur))

    def test_validator_truncates_error_flood(self):
        doc = {"traceEvents": [{"ph": "Q"}] * 100}
        errors = validate_chrome_trace(doc)
        assert errors[-1] == "... (truncated)"
        assert len(errors) <= 21


class TestPipeview:
    def test_renders_rows_with_stage_marks(self, die_irb_run):
        _, recorder, _ = die_irb_run
        view = render_pipeview(recorder.events, max_insts=32)
        lines = view.splitlines()
        assert lines[0].startswith("cycles ")
        rows = [line for line in lines if "|" in line]
        assert len(rows) == 32
        assert any("P " in row for row in rows)
        assert any("D " in row for row in rows)
        for mark in "FDIR":
            assert any(mark in row.split("|")[1] for row in rows)

    def test_empty_stream(self):
        assert "no instruction events" in render_pipeview([])

    def test_start_seq_offsets_the_window(self, die_irb_run):
        _, recorder, _ = die_irb_run
        view = render_pipeview(recorder.events, max_insts=4, start_seq=100)
        assert "   100P" in view or "   100D" in view


# ----------------------------------------------------------------------
# Profiles: build / persist / diff
# ----------------------------------------------------------------------


def make_profile(result, collector, **overrides):
    profile = build_profile(
        result.stats.to_dict(), collector,
        result.workload, result.model,
        overrides.pop("n_insts", N), overrides.pop("seed", 1),
    )
    profile.stats.update(overrides)
    return profile


class TestRunProfile:
    def test_round_trip(self, die_irb_run, tmp_path):
        result, _, collector = die_irb_run
        profile = make_profile(result, collector)
        path = tmp_path / "p.json"
        save_profile(profile, path)
        loaded = load_profile(path)
        assert loaded.label == profile.label == "gzip/die-irb/n3000/s1"
        assert loaded.stats == profile.stats
        assert loaded.metrics == profile.metrics

    def test_rejects_wrong_kind_and_format(self):
        with pytest.raises(ValueError):
            RunProfile.from_dict({"kind": "nonsense", "format": 1})
        with pytest.raises(ValueError):
            RunProfile.from_dict({"kind": "repro-run-profile", "format": 99})

    def test_diff_self_is_clean(self, die_irb_run):
        result, _, collector = die_irb_run
        profile = make_profile(result, collector)
        diff = diff_profiles(profile, profile)
        assert isinstance(diff, ProfileDiff)
        assert not diff.regressed
        assert all(e.verdict in ("ok", "info") for e in diff.entries)
        assert "0 degradation(s)" in diff.render()

    def test_injected_ipc_regression_is_flagged(self, die_irb_run):
        result, _, collector = die_irb_run
        base = make_profile(result, collector)
        worse = make_profile(
            result, collector,
            ipc=base.stats["ipc"] * 0.8,
            cycles=int(base.stats["cycles"] * 1.25),
        )
        diff = diff_profiles(base, worse, threshold_pct=5.0)
        assert diff.regressed
        flagged = {e.metric for e in diff.degradations}
        assert {"ipc", "cycles"} <= flagged

    def test_improvement_is_optimization_not_regression(self, die_irb_run):
        result, _, collector = die_irb_run
        base = make_profile(result, collector)
        better = make_profile(result, collector, ipc=base.stats["ipc"] * 1.5)
        diff = diff_profiles(base, better)
        assert not diff.regressed
        assert any(
            e.metric == "ipc" and e.verdict == "optimization"
            for e in diff.entries
        )

    def test_threshold_suppresses_noise(self, die_irb_run):
        result, _, collector = die_irb_run
        base = make_profile(result, collector)
        slightly = make_profile(result, collector, ipc=base.stats["ipc"] * 0.99)
        assert not diff_profiles(base, slightly, threshold_pct=5.0).regressed
        assert diff_profiles(base, slightly, threshold_pct=0.5).regressed

    def test_bad_threshold_rejected(self, die_irb_run):
        result, _, collector = die_irb_run
        profile = make_profile(result, collector)
        with pytest.raises(ValueError):
            diff_profiles(profile, profile, threshold_pct=-1)

    def test_diff_to_dict_is_json_ready(self, die_irb_run):
        result, _, collector = die_irb_run
        profile = make_profile(result, collector)
        payload = diff_profiles(profile, profile).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["regressed"] is False


class TestStoreProfiles:
    def test_profile_side_car_round_trip(self, die_irb_run, tmp_path):
        result, _, collector = die_irb_run
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N, model="die-irb")
        profile = make_profile(result, collector)
        key = store.put_profile(job, profile)
        assert store.get_profile(key).stats == profile.stats
        assert store.get_profile_for_job(job).label == profile.label

    def test_side_cars_invisible_to_result_reads(self, die_irb_run, tmp_path):
        result, _, collector = die_irb_run
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N, model="die-irb")
        key = store.put_profile(job, make_profile(result, collector))
        assert list(store.keys()) == []  # no result entry was written
        assert store.get(key) is None
        assert store.get_profile("0" * 64) is None  # absent key

    def test_clear_removes_side_cars(self, die_irb_run, tmp_path):
        from repro.campaign.jobs import Provenance

        result, _, collector = die_irb_run
        store = ResultStore(tmp_path / "store")
        job = Job("gzip", N, model="die-irb")
        key = store.put(
            job, result.stats,
            Provenance(source="run", wall_time_s=0.0, code_version="test"),
        )
        store.put_profile(job, make_profile(result, collector))
        assert store.clear() == 1
        assert store.get_profile(key) is None
        assert not list(store.keys())


# ----------------------------------------------------------------------
# CLI: repro trace / repro profile diff
# ----------------------------------------------------------------------


class TestTraceCommand:
    def test_trace_writes_valid_perfetto_json(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "gzip", "--model", "die-irb", "--n", "2000",
            "--out", str(out),
        ])
        assert code == 0
        with open(out) as handle:
            doc = json.load(handle)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["model"] == "die-irb"

    def test_trace_pipeview_and_profile(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        prof = tmp_path / "run.profile.json"
        code = main([
            "trace", "gzip", "--model", "die", "--n", "2000",
            "--out", str(out), "--pipeview", "6", "--profile", str(prof),
        ])
        assert code == 0
        view = capsys.readouterr().out
        assert "cycles " in view and "|" in view
        assert load_profile(prof).model == "die"

    def test_trace_store_profile(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code = main([
            "trace", "gzip", "--n", "2000", "--out",
            str(tmp_path / "t.json"), "--store-profile",
            "--store-dir", str(store_dir),
        ])
        assert code == 0
        store = ResultStore(store_dir)
        job = Job("gzip", 2000, model="sie")
        assert store.get_profile_for_job(job) is not None


class TestProfileDiffCommand:
    def _write_profiles(self, tmp_path):
        base = tmp_path / "base.json"
        target = tmp_path / "target.json"
        for model, path in (("sie", base), ("die", target)):
            assert main([
                "trace", "gzip", "--model", model, "--n", "2000",
                "--out", str(tmp_path / f"{model}.trace.json"),
                "--profile", str(path),
            ]) == 0
        return base, target

    def test_same_profile_exits_zero(self, capsys, tmp_path):
        base, _ = self._write_profiles(tmp_path)
        assert main(["profile", "diff", str(base), str(base)]) == 0
        assert "0 degradation(s)" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        base, target = self._write_profiles(tmp_path)
        # DIE pays an IPC penalty vs SIE: the diff must flag it.
        assert main(["profile", "diff", str(base), str(target)]) == 1
        out = capsys.readouterr().out
        assert "degradation" in out

    def test_json_output(self, capsys, tmp_path):
        base, _ = self._write_profiles(tmp_path)
        assert main(["profile", "diff", str(base), str(base), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is False

    def test_missing_profile_fails_cleanly(self, capsys, tmp_path):
        assert main(["profile", "diff", "nope", "nada"]) == 2
        assert "nope" in capsys.readouterr().err
