"""Unit and property tests for the Instruction Reuse Buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reuse import IRB, IRBConfig, IRBEntry, PortArbiter


def drain_all(irb):
    """Drain the write queue with unlimited ports."""
    ports = PortArbiter(read_ports=0, write_ports=64, rw_ports=0)
    cycle = 0
    while irb._write_q:
        irb.drain(ports, cycle)
        cycle += 1


class TestIRBConfig:
    def test_paper_defaults(self):
        config = IRBConfig()
        assert config.entries == 1024 and config.ways == 1
        assert (config.read_ports, config.write_ports, config.rw_ports) == (4, 2, 2)
        assert config.lookup_latency == 3

    def test_rejects_non_pow2_entries(self):
        with pytest.raises(ValueError):
            IRBConfig(entries=1000)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            IRBConfig(entries=64, ways=3)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            IRBConfig(replacement="random")

    def test_sets_derivation(self):
        assert IRBConfig(entries=64, ways=4).sets == 16


class TestLookupInsert:
    def test_miss_then_hit(self):
        irb = IRB(IRBConfig(entries=16))
        assert irb.lookup(0x100) is None
        irb.enqueue_write(0x100, 1, 2, 3)
        drain_all(irb)
        entry = irb.lookup(0x100)
        assert entry is not None
        assert (entry.op1, entry.op2, entry.result) == (1, 2, 3)

    def test_refresh_in_place(self):
        irb = IRB(IRBConfig(entries=16))
        irb.enqueue_write(0x100, 1, 2, 3)
        irb.enqueue_write(0x100, 4, 5, 6)
        drain_all(irb)
        entry = irb.lookup(0x100)
        assert (entry.op1, entry.op2, entry.result) == (4, 5, 6)
        assert irb.occupancy == 1

    def test_direct_mapped_conflict_evicts(self):
        irb = IRB(IRBConfig(entries=16, ways=1))
        conflicting = 0x100 + 16 * 4  # same set, different PC
        irb.enqueue_write(0x100, 1, 1, 1)
        irb.enqueue_write(conflicting, 2, 2, 2)
        drain_all(irb)
        assert irb.lookup(0x100) is None
        assert irb.lookup(conflicting) is not None

    def test_two_way_keeps_both(self):
        irb = IRB(IRBConfig(entries=16, ways=2))
        conflicting = 0x100 + 8 * 4
        irb.enqueue_write(0x100, 1, 1, 1)
        irb.enqueue_write(conflicting, 2, 2, 2)
        drain_all(irb)
        assert irb.lookup(0x100) is not None
        assert irb.lookup(conflicting) is not None

    def test_invalidate(self):
        irb = IRB(IRBConfig(entries=16))
        irb.enqueue_write(0x100, 1, 2, 3)
        drain_all(irb)
        assert irb.invalidate(0x100)
        assert irb.lookup(0x100) is None
        assert not irb.invalidate(0x100)

    def test_write_queue_overflow_drops_oldest(self):
        irb = IRB(IRBConfig(entries=16, write_queue_depth=2))
        for i in range(4):
            irb.enqueue_write(0x100 + 4 * i, i, i, i)
        assert irb.stats.write_drops == 2

    def test_flush(self):
        irb = IRB(IRBConfig(entries=16))
        irb.enqueue_write(0x100, 1, 2, 3)
        drain_all(irb)
        irb.flush()
        assert irb.occupancy == 0


class TestCTRReplacement:
    def test_hot_entry_defends_slot(self):
        irb = IRB(IRBConfig(entries=16, replacement="ctr"))
        irb.enqueue_write(0x100, 1, 1, 1)
        drain_all(irb)
        entry = irb.lookup(0x100)
        irb.touch(entry)  # ctr = 1
        conflicting = 0x100 + 16 * 4
        irb.enqueue_write(conflicting, 2, 2, 2)
        drain_all(irb)
        assert irb.lookup(0x100) is not None  # defended
        assert irb.lookup(conflicting) is None
        assert irb.stats.defended == 1

    def test_defence_decays(self):
        irb = IRB(IRBConfig(entries=16, replacement="ctr"))
        irb.enqueue_write(0x100, 1, 1, 1)
        drain_all(irb)
        irb.touch(irb.lookup(0x100))  # ctr = 1
        conflicting = 0x100 + 16 * 4
        for _ in range(2):  # first decays ctr to 0, second replaces
            irb.enqueue_write(conflicting, 2, 2, 2)
            drain_all(irb)
        assert irb.lookup(conflicting) is not None
        assert irb.lookup(0x100) is None

    def test_ctr_saturates(self):
        irb = IRB(IRBConfig(entries=16, replacement="ctr", ctr_bits=2))
        irb.enqueue_write(0x100, 1, 1, 1)
        drain_all(irb)
        entry = irb.lookup(0x100)
        for _ in range(10):
            irb.touch(entry)
        assert entry.ctr == 3


class TestReuseTests:
    def test_value_match(self):
        entry = IRBEntry(pc=0x100, op1=5, op2=7, result=12)
        assert entry.matches_values(5, 7)
        assert not entry.matches_values(5, 8)
        assert not entry.matches_values(None, 7)

    def test_value_match_with_absent_operand(self):
        entry = IRBEntry(pc=0x100, op1=5, op2=None, result=10)
        assert entry.matches_values(5, None)
        assert not entry.matches_values(5, 0)

    def test_name_match_tracks_versions(self):
        irb = IRB(IRBConfig(entries=16, name_based=True))
        entry = IRBEntry(pc=0x100, op1=(3, 0), op2=(4, 0), result=9)
        versions = irb.reg_versions
        assert entry.matches_names((3, 4), versions)
        irb.note_reg_write(3)
        assert not entry.matches_names((3, 4), versions)

    def test_name_match_requires_same_registers(self):
        entry = IRBEntry(pc=0x100, op1=(3, 0), op2=None, result=9)
        versions = [0] * 64
        assert entry.matches_names((3, None), versions)
        assert not entry.matches_names((5, None), versions)
        assert not entry.matches_names((3, 4), versions)


class TestCorruption:
    def test_corrupt_targeted_pc(self):
        irb = IRB(IRBConfig(entries=16))
        irb.enqueue_write(0x100, 1, 2, 3)
        drain_all(irb)
        assert irb.corrupt(0x100, lambda v: v + 1)
        assert irb.lookup(0x100).result == 4

    def test_corrupt_missing_pc_is_latent(self):
        irb = IRB(IRBConfig(entries=16))
        assert not irb.corrupt(0x100, lambda v: v + 1)

    def test_corrupt_any(self):
        irb = IRB(IRBConfig(entries=16))
        assert not irb.corrupt(-1, lambda v: v + 1)
        irb.enqueue_write(0x100, 1, 2, 3)
        drain_all(irb)
        assert irb.corrupt(-1, lambda v: v + 1)


class TestPortArbiter:
    def test_read_capacity(self):
        ports = PortArbiter(read_ports=2, write_ports=1, rw_ports=1)
        grants = [ports.try_read(0) for _ in range(4)]
        assert grants == [True, True, True, False]  # 2R + 1RW

    def test_write_capacity(self):
        ports = PortArbiter(read_ports=2, write_ports=1, rw_ports=1)
        grants = [ports.try_write(0) for _ in range(3)]
        assert grants == [True, True, False]  # 1W + 1RW

    def test_rw_shared_between_sides(self):
        ports = PortArbiter(read_ports=1, write_ports=1, rw_ports=1)
        assert ports.try_read(0) and ports.try_read(0)  # R + RW
        assert ports.try_write(0)  # W
        assert not ports.try_write(0)  # RW already spent on a read

    def test_cycle_rollover_resets(self):
        ports = PortArbiter(read_ports=1, write_ports=0, rw_ports=0)
        assert ports.try_read(0)
        assert not ports.try_read(0)
        assert ports.try_read(1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.sampled_from(["r", "w"])),
            max_size=60,
        )
    )
    def test_grants_never_exceed_capacity(self, requests):
        ports = PortArbiter(read_ports=2, write_ports=1, rw_ports=2)
        per_cycle = {}
        for cycle, kind in sorted(requests, key=lambda t: t[0]):
            ok = ports.try_read(cycle) if kind == "r" else ports.try_write(cycle)
            if ok:
                reads, writes = per_cycle.get(cycle, (0, 0))
                per_cycle[cycle] = (
                    (reads + 1, writes) if kind == "r" else (reads, writes + 1)
                )
        for reads, writes in per_cycle.values():
            assert reads <= 4 and writes <= 3
            assert reads + writes <= 5  # R + W + RW total


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=120,
    )
)
def test_irb_agrees_with_reference_model(operations):
    """Property: a direct-mapped IRB behaves as a per-set last-writer map."""
    irb = IRB(IRBConfig(entries=8, ways=1, write_queue_depth=256))
    reference = {}
    for pc4, op1, op2 in operations:
        pc = pc4 * 4
        irb.enqueue_write(pc, op1, op2, op1 + op2)
        drain_all(irb)
        reference[pc4 % 8] = (pc, op1, op2)
    for set_index, (pc, op1, op2) in reference.items():
        entry = irb.lookup(pc)
        assert entry is not None
        assert (entry.op1, entry.op2, entry.result) == (op1, op2, op1 + op2)
