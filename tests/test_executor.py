"""Directed semantic tests for the functional executor.

Each test assembles a tiny program and checks architected results, so the
executor serves as a trustworthy golden model for the timing pipelines.
"""

import pytest

from repro.isa import Opcode, StaticInst, fp_reg, int_reg
from repro.workloads import Program
from repro.workloads.executor import FunctionalExecutor
from repro.workloads.program import DataArray

from helpers import addi, assemble, straightline

R1, R2, R3, R4 = int_reg(1), int_reg(2), int_reg(3), int_reg(4)
F1, F2, F3 = fp_reg(1), fp_reg(2), fp_reg(3)


class TestIntArithmetic:
    def test_addi_and_add(self):
        trace = straightline(
            [addi(R1, 0, 5), addi(R2, 0, 7), (Opcode.ADD, R3, R1, R2, 0)]
        )
        assert trace[2].result == 12
        assert trace[2].src1_val == 5 and trace[2].src2_val == 7

    def test_sub_and_slt(self):
        trace = straightline(
            [
                addi(R1, 0, 5),
                addi(R2, 0, 7),
                (Opcode.SUB, R3, R1, R2, 0),
                (Opcode.SLT, R4, R1, R2, 0),
            ]
        )
        assert trace[2].result == -2
        assert trace[3].result == 1

    def test_logical_ops(self):
        trace = straightline(
            [
                addi(R1, 0, 0b1100),
                addi(R2, 0, 0b1010),
                (Opcode.AND, R3, R1, R2, 0),
                (Opcode.OR, R3, R1, R2, 0),
                (Opcode.XOR, R3, R1, R2, 0),
            ]
        )
        assert trace[2].result == 0b1000
        assert trace[3].result == 0b1110
        assert trace[4].result == 0b0110

    def test_shifts_use_imm_when_no_src2(self):
        trace = straightline(
            [addi(R1, 0, 3), (Opcode.SHL, R2, R1, None, 4), (Opcode.SHR, R3, R2, None, 2)]
        )
        assert trace[1].result == 48
        assert trace[2].result == 12

    def test_shr_is_logical_on_negative(self):
        trace = straightline([addi(R1, 0, -1), (Opcode.SHR, R2, R1, None, 60)])
        assert trace[1].result == 15

    def test_lui(self):
        trace = straightline([(Opcode.LUI, R1, None, None, 3)])
        assert trace[0].result == 3 << 16

    def test_mul_div(self):
        trace = straightline(
            [
                addi(R1, 0, -6),
                addi(R2, 0, 4),
                (Opcode.MUL, R3, R1, R2, 0),
                (Opcode.DIV, R4, R1, R2, 0),
            ]
        )
        assert trace[2].result == -24
        assert trace[3].result == -1

    def test_add_wraps_to_64_bits(self):
        big = (1 << 62) + 11
        trace = straightline(
            [addi(R1, 0, big), (Opcode.ADD, R2, R1, R1, 0), (Opcode.ADD, R3, R2, R2, 0)]
        )
        expected = ((big * 4 + (1 << 63)) % (1 << 64)) - (1 << 63)
        assert trace[2].result == expected

    def test_zero_register_ignores_writes(self):
        trace = straightline([addi(0, 0, 99), (Opcode.ADD, R1, 0, 0, 0)])
        assert trace[1].result == 0


class TestFloatArithmetic:
    def test_fp_ops(self):
        arrays = [DataArray("ftab", base=0x1000, words=8, entropy=2, is_fp=True)]
        program = assemble(
            [
                (Opcode.FLOAD, F1, R1, None, 0x1000),
                (Opcode.FLOAD, F2, R1, None, 0x1008),
                (Opcode.FADD, F3, F1, F2, 0),
                (Opcode.FSUB, F3, F1, F2, 0),
                (Opcode.FMUL, F3, F1, F2, 0),
                (Opcode.FDIV, F3, F1, F2, 0),
                (Opcode.FSQRT, F3, F1, None, 0),
            ],
            arrays=arrays,
        )
        ex = FunctionalExecutor(program)
        trace = ex.run(7)
        a, b = trace[0].result, trace[1].result
        assert trace[2].result == a + b
        assert trace[3].result == a - b
        assert trace[4].result == a * b
        assert trace[5].result == pytest.approx(a / b)
        assert trace[6].result == pytest.approx(a ** 0.5)

    def test_fcmp(self):
        arrays = [DataArray("ftab", base=0x1000, words=8, entropy=8, is_fp=True)]
        program = assemble(
            [
                (Opcode.FLOAD, F1, R1, None, 0x1000),
                (Opcode.FLOAD, F2, R1, None, 0x1008),
                (Opcode.FCMP, F3, F1, F2, 0),
            ],
            arrays=arrays,
        )
        trace = FunctionalExecutor(program).run(3)
        expected = 1.0 if trace[0].result < trace[1].result else 0.0
        assert trace[2].result == expected


class TestMemory:
    def test_store_then_load_roundtrip(self):
        arrays = [DataArray("a", base=0x2000, words=16, entropy=4)]
        program = assemble(
            [
                addi(R1, 0, 0x2000),
                addi(R2, 0, 1234),
                (Opcode.STORE, None, R1, R2, 8),
                (Opcode.LOAD, R3, R1, None, 8),
            ],
            arrays=arrays,
        )
        trace = FunctionalExecutor(program).run(4)
        assert trace[2].mem_addr == 0x2008
        assert trace[2].result == 0x2008  # stores expose their address
        assert trace[3].result == 1234

    def test_uninitialized_array_reads_from_pool(self):
        arrays = [DataArray("a", base=0x2000, words=16, entropy=4)]
        program = assemble(
            [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0)], arrays=arrays
        )
        trace = FunctionalExecutor(program).run(2)
        assert isinstance(trace[1].result, int)

    def test_load_outside_any_array_reads_zero(self):
        trace = straightline([addi(R1, 0, 0x9999000), (Opcode.LOAD, R2, R1, None, 0)])
        assert trace[1].result == 0

    def test_pool_determinism(self):
        arrays = [DataArray("a", base=0x2000, words=64, entropy=8)]
        ops = [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 24)]
        t1 = FunctionalExecutor(assemble(ops, arrays=list(arrays))).run(2)
        t2 = FunctionalExecutor(assemble(ops, arrays=list(arrays))).run(2)
        assert t1[1].result == t2[1].result

    def test_misaligned_access_is_word_masked(self):
        arrays = [DataArray("a", base=0x2000, words=16, entropy=4)]
        program = assemble(
            [
                addi(R1, 0, 0x2000),
                addi(R2, 0, 42),
                (Opcode.STORE, None, R1, R2, 0),
                (Opcode.LOAD, R3, R1, None, 5),  # inside the same word
            ],
            arrays=arrays,
        )
        trace = FunctionalExecutor(program).run(4)
        assert trace[3].result == 42


class TestControlFlow:
    def test_taken_and_not_taken_branch(self):
        program = assemble(
            [
                addi(R1, 0, 1),
                (Opcode.BEQ, None, R1, 0, 0, 16),  # not taken (1 != 0)
                (Opcode.BNE, None, R1, 0, 0, 16),  # taken -> pc 16
                (Opcode.ADDI, R2, 0, None, 7),  # skipped
                addi(R3, 0, 9),  # target
            ]
        )
        trace = FunctionalExecutor(program).run(4)
        assert not trace[1].taken and trace[1].next_pc == 8
        assert trace[2].taken and trace[2].next_pc == 16
        assert trace[3].pc == 16

    def test_blt_bge(self):
        program = assemble(
            [
                addi(R1, 0, -5),
                (Opcode.BLT, None, R1, 0, 0, 12),
                nop := (Opcode.NOP, None, None, None, 0),
                (Opcode.BGE, None, R1, 0, 0, 24),  # pc 12: -5 >= 0 false
                nop,
            ]
        )
        trace = FunctionalExecutor(program).run(3)
        assert trace[1].taken  # -5 < 0
        assert trace[2].pc == 12
        assert not trace[2].taken

    def test_call_and_ret(self):
        program = assemble(
            [
                (Opcode.JUMP, None, None, None, 0, 12),  # jump over helper
                addi(R1, 0, 77),  # helper body, pc 4
                (Opcode.RET, None, int_reg(31), None, 0),  # pc 8
                (Opcode.CALL, int_reg(31), None, None, 0, 4),  # pc 12
                addi(R2, 0, 1),  # pc 16: return lands here
            ]
        )
        trace = FunctionalExecutor(program).run(5)
        assert trace[0].next_pc == 12
        assert trace[1].pc == 12  # CALL
        assert trace[1].result == 16  # link value
        assert trace[2].pc == 4  # helper body
        assert trace[3].pc == 8  # RET
        assert trace[3].next_pc == 16
        assert trace[4].pc == 16

    def test_branch_result_is_next_pc(self):
        program = assemble([addi(R1, 0, 1), (Opcode.BNE, None, R1, 0, 0, 16), nop := (Opcode.NOP, None, None, None, 0), nop, nop])
        trace = FunctionalExecutor(program).run(2)
        assert trace[1].result == trace[1].next_pc == 16


class TestExecutorBookkeeping:
    def test_seq_numbers_are_dense(self):
        trace = straightline([addi(R1, 0, 1)] * 5)
        assert [i.seq for i in trace] == list(range(5))

    def test_program_rejects_bad_pcs(self):
        with pytest.raises(ValueError):
            Program(
                name="bad",
                insts=[StaticInst(pc=8, opcode=Opcode.NOP)],
                arrays=[],
            )
