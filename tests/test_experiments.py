"""Smoke + semantics tests for every registered experiment.

Each experiment runs at a reduced scale (2 apps, few thousand
instructions) and must produce structurally valid, renderable results.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment

SMALL = dict(apps=("gzip", "ammp"), n_insts=4000)


class TestRegistry:
    def test_registry_is_complete(self):
        assert len(EXPERIMENTS) == 17
        assert {"T1", "T2", "F2", "F5", "F11"} <= set(EXPERIMENTS)

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("f2").id == "F2"

    def test_unknown_id_lists_choices(self):
        with pytest.raises(KeyError, match="F2"):
            get_experiment("F99")


class TestTableExperiments:
    def test_t1_renders_machine(self):
        text = get_experiment("T1").run().render()
        assert "RUU / LSQ: 128 / 64" in text
        assert "1024 entries" in text

    def test_t2_reports_both_ipcs(self):
        result = get_experiment("T2").run(**SMALL)
        assert len(result.entries) == 2
        for row in result.entries:
            assert row.sie_ipc >= row.die_ipc > 0
        assert "gzip" in result.render()


class TestFigure2:
    def test_f2_has_all_eight_configs(self):
        from repro.experiments.fig2_resources import CONFIG_KEYS

        result = get_experiment("F2").run(**SMALL)
        for app in SMALL["apps"]:
            assert set(result.losses[app]) == set(CONFIG_KEYS)

    def test_f2_full_doubling_nearly_recovers(self):
        result = get_experiment("F2").run(**SMALL)
        for app in SMALL["apps"]:
            assert (
                result.losses[app]["DIE-2xALU-2xRUU-2xWidths"]
                <= result.losses[app]["DIE"] + 1.0
            )

    def test_f2_renders_average_row(self):
        assert "average" in get_experiment("F2").run(**SMALL).render()


class TestHeadline:
    def test_f5_recovery_fractions_bounded(self):
        result = get_experiment("F5").run(**SMALL)
        for row in result.entries:
            assert row.die_irb_ipc >= row.die_ipc * 0.99
        assert "-0." not in f"{max(0.0, result.mean_overall_recovery):.2f}"

    def test_f6_rates_are_probabilities(self):
        result = get_experiment("F6").run(**SMALL)
        for row in result.entries:
            assert 0 <= row.reuse_rate <= row.pc_hit_rate <= 1


class TestSweeps:
    def test_f7_size_sweep_monotone_reuse(self):
        result = get_experiment("F7").run(sizes=(64, 1024), **SMALL)
        assert result.mean_reuse(1024) >= result.mean_reuse(64) - 0.01

    def test_f8_more_ports_less_starvation(self):
        result = get_experiment("F8").run(ports=(1, 8), **SMALL)
        assert result.mean_starved(8) <= result.mean_starved(1)

    def test_a3_latency_sweep_monotone(self):
        result = get_experiment("A3").run(latencies=(1, 12), **SMALL)
        assert result.mean_loss(12) >= result.mean_loss(1) - 0.5

    def test_f9_variants_all_run(self):
        result = get_experiment("F9").run(**SMALL)
        assert set(result.reuse) == {"DM", "DM+CTR", "2-way", "4-way"}


class TestBreakdownAndAblations:
    def test_f10_fractions_sum_to_one(self):
        result = get_experiment("F10").run(**SMALL)
        for row in result.entries:
            assert row.dup_via_irb + row.dup_via_fu == pytest.approx(1.0)

    def test_a1_name_based_never_reuses_more(self):
        result = get_experiment("A1").run(**SMALL)
        for app in SMALL["apps"]:
            assert result.name_reuse[app] <= result.value_reuse[app] + 0.01

    def test_a2_speedups_positive(self):
        result = get_experiment("A2").run(**SMALL)
        for app in SMALL["apps"]:
            assert result.sie_speedup[app] > 0.9
            assert result.die_speedup[app] > 0.95


class TestFaultCoverage:
    def test_f11_exec_faults_fully_covered(self):
        result = get_experiment("F11").run(
            apps=("gzip",), n_insts=6000, faults_per_kind=2
        )
        from repro.redundancy import EXEC_DUP, EXEC_PRIMARY, FORWARD_BOTH

        assert result.cells[EXEC_PRIMARY].coverage == 1.0
        assert result.cells[EXEC_DUP].coverage == 1.0
        assert result.cells[FORWARD_BOTH].detected == 0

    def test_f11_renders(self):
        result = get_experiment("F11").run(
            apps=("gzip",), n_insts=6000, faults_per_kind=1
        )
        assert "coverage" in result.render()
