"""Tests for the runner, metrics, reporting and sweep helpers."""

import pytest

from repro.simulation import (
    MODELS,
    format_series,
    format_table,
    geometric_mean,
    get_trace,
    ipc_loss_pct,
    recovered_fraction,
    run_workload,
    simulate,
    sweep,
)
from repro.simulation.metrics import arithmetic_mean


class TestRunner:
    def test_model_registry(self):
        assert {"sie", "die", "die-irb", "sie-irb"} <= set(MODELS)
        assert {"die-cluster-split", "die-cluster-repl"} <= set(MODELS)

    def test_unknown_model_rejected(self, gzip_trace):
        with pytest.raises(ValueError, match="unknown model"):
            simulate(gzip_trace, "quantum")

    def test_irb_config_rejected_for_plain_models(self, gzip_trace):
        from repro.reuse import IRBConfig

        with pytest.raises(ValueError):
            simulate(gzip_trace, "sie", irb_config=IRBConfig())

    def test_trace_cache_returns_same_object(self):
        t1 = get_trace("gzip", 2000)
        t2 = get_trace("gzip", 2000)
        assert t1 is t2

    def test_trace_cache_distinguishes_params(self):
        assert get_trace("gzip", 2000) is not get_trace("gzip", 2001)

    def test_trace_cache_evicts_least_recently_used(self, monkeypatch):
        from repro.simulation import runner

        monkeypatch.setattr(runner, "_TRACE_CACHE", {})
        monkeypatch.setattr(runner, "_TRACE_CACHE_LIMIT", 2)
        hot = get_trace("gzip", 1000)
        get_trace("gzip", 1001)
        # Touch the older entry: it is now the most recently used...
        assert get_trace("gzip", 1000) is hot
        # ...so inserting a third trace must evict 1001, not 1000.
        get_trace("gzip", 1002)
        assert get_trace("gzip", 1000) is hot  # still cached
        assert list(runner._TRACE_CACHE) == [
            ("gzip", 1002, 1),
            ("gzip", 1000, 1),
        ]

    def test_run_workload_end_to_end(self):
        result = run_workload("gzip", model="sie", n_insts=2000)
        assert result.workload == "gzip"
        assert result.stats.committed == 2000
        assert result.ipc > 0

    def test_results_are_deterministic(self):
        a = run_workload("vpr", model="die", n_insts=3000)
        b = run_workload("vpr", model="die", n_insts=3000)
        assert a.stats.cycles == b.stats.cycles


class TestMetrics:
    def test_ipc_loss(self):
        assert ipc_loss_pct(2.0, 1.5) == pytest.approx(25.0)
        assert ipc_loss_pct(2.0, 2.0) == 0.0
        assert ipc_loss_pct(2.0, 2.5) == pytest.approx(-25.0)

    def test_ipc_loss_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            ipc_loss_pct(0.0, 1.0)

    def test_recovered_fraction(self):
        # DIE=1.0, bound=2.0, improved=1.5 -> half the gap recovered.
        assert recovered_fraction(1.0, 1.5, 2.0) == pytest.approx(0.5)
        assert recovered_fraction(1.0, 1.0, 2.0) == 0.0
        assert recovered_fraction(1.0, 2.0, 2.0) == 1.0

    def test_recovered_fraction_no_gap(self):
        assert recovered_fraction(2.0, 2.5, 2.0) == 0.0

    def test_means(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])


class TestReporting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.234], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.23" in text and "22.50" in text

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.startswith("hello")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series_layout(self):
        text = format_series("size", [1, 2], [("loss", [10.0, 5.0])])
        assert "size" in text and "loss" in text and "5.00" in text

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestSweep:
    def test_cartesian_product_order(self):
        calls = []

        def record(a, b):
            calls.append((a, b))
            return a * 10 + b

        results = sweep([("a", [1, 2]), ("b", [3, 4])], record)
        assert calls == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert [r.value for r in results] == [13, 14, 23, 24]
        assert results[0].params == {"a": 1, "b": 3}

    def test_progress_callback(self):
        seen = []
        sweep([("x", [1, 2])], lambda x: x, progress=seen.append)
        assert seen == [{"x": 1}, {"x": 2}]
