"""Tests for the SRT-style thread-level redundancy model."""

import pytest

from repro.redundancy import SRTPipeline
from repro.simulation import get_trace, simulate


class TestConstruction:
    def test_slack_validated(self, gzip_trace):
        with pytest.raises(ValueError):
            SRTPipeline(gzip_trace, slack=0)

    def test_default_slack(self, gzip_trace):
        assert SRTPipeline(gzip_trace).slack == 64


class TestExecution:
    def test_commits_and_checks_everything(self, gzip_trace):
        result = simulate(gzip_trace, "srt")
        assert result.stats.committed == len(gzip_trace)
        assert result.stats.pairs_checked == len(gzip_trace)
        assert result.stats.check_mismatches == 0

    def test_never_faster_than_sie(self, gzip_trace):
        sie = simulate(gzip_trace, "sie").stats.cycles
        srt = simulate(gzip_trace, "srt").stats.cycles
        assert srt >= sie

    def test_memory_accessed_once(self, gzip_trace):
        sie = simulate(gzip_trace, "sie")
        srt = simulate(gzip_trace, "srt")
        assert (
            srt.pipeline.hier.l1d.stats.accesses
            == sie.pipeline.hier.l1d.stats.accesses
        )

    def test_trailing_thread_never_mispredicts(self, gzip_trace):
        sie = simulate(gzip_trace, "sie")
        srt = simulate(gzip_trace, "srt")
        # Only the leading thread predicts: branch counts match SIE,
        # they do not double.
        assert srt.stats.branches == sie.stats.branches

    def test_works_on_all_classes(self, art_trace, ammp_trace):
        for trace in (art_trace, ammp_trace):
            result = simulate(trace, "srt")
            assert result.stats.committed == len(trace)

    def test_slack_sensitivity(self, gzip_trace):
        tight = SRTPipeline(gzip_trace, slack=8)
        tight.warm_up()
        tight_stats = tight.run()
        loose = SRTPipeline(gzip_trace, slack=128)
        loose.warm_up()
        loose_stats = loose.run()
        assert tight_stats.committed == loose_stats.committed == len(gzip_trace)


class TestFaults:
    def test_exec_fault_detected_at_trailing_commit(self):
        from repro.redundancy import Fault, FaultInjector
        from repro.redundancy.faults import EXEC_PRIMARY

        trace = get_trace("gzip", 4000)
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=2000)])
        result = simulate(trace, "srt", fault_injector=injector)
        assert result.stats.check_mismatches >= 1
        assert result.stats.committed == len(trace)

    def test_a7_experiment_renders(self):
        from repro.experiments import get_experiment

        result = get_experiment("A7").run(apps=("gzip",), n_insts=4000)
        assert "SRT" in result.render()
