"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "die-irb" in out and "F2" in out


class TestRun:
    def test_run_prints_ipc(self, capsys):
        assert main(["run", "gzip", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out and "gzip on SIE" in out

    def test_run_irb_model_prints_reuse(self, capsys):
        assert main(["run", "gzip", "--model", "die-irb", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "reuse rate" in out and "pairs checked" in out

    def test_run_with_scaling(self, capsys):
        assert main(["run", "gzip", "--n", "3000", "--scale-alu", "2"]) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "crysis"])


class TestCompare:
    def test_compare_rows(self, capsys):
        assert main(["compare", "ammp", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "SIE" in out and "DIE-IRB" in out and "loss% vs SIE" in out


class TestExperiment:
    def test_experiment_runs(self, capsys):
        code = main(["experiment", "T1"])
        assert code == 0
        assert "RUU / LSQ" in capsys.readouterr().out

    def test_experiment_with_args(self, capsys):
        code = main(["experiment", "F6", "--apps", "gzip", "--n", "3000"])
        assert code == 0
        assert "gzip" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "F99"]) == 2
        assert "F2" in capsys.readouterr().err

    def test_experiment_json_rows(self, capsys):
        import json

        code = main(["experiment", "F6", "--apps", "gzip", "--n", "3000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == "F6"
        assert payload["title"]
        assert isinstance(payload["reconstructed"], bool)
        assert payload["rows"] and any("gzip" in row for row in payload["rows"])

    def test_experiment_json_matches_rendered_run(self, capsys):
        import json

        base = ["experiment", "F6", "--apps", "gzip", "--n", "3000"]
        assert main(base) == 0
        rendered = capsys.readouterr().out
        assert main(base + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The same run serialized two ways: every row label is in the table.
        for row in payload["rows"]:
            assert str(row[0]) in rendered


class TestCompareModels:
    def test_custom_model_list(self, capsys):
        assert main(["compare", "gzip", "--n", "3000", "--models", "sie,srt,die-vp"]) == 0
        out = capsys.readouterr().out
        assert "SRT" in out and "DIE-VP" in out

    def test_sie_baseline_inserted(self, capsys):
        assert main(["compare", "gzip", "--n", "3000", "--models", "die"]) == 0
        assert "SIE" in capsys.readouterr().out

    def test_unknown_model_rejected(self, capsys):
        assert main(["compare", "gzip", "--models", "die,warp"]) == 2
        assert "warp" in capsys.readouterr().err


class TestCompareJson:
    def test_compare_json_rows(self, capsys):
        import json

        assert main(["compare", "gzip", "--n", "3000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "gzip"
        assert [m["model"] for m in payload["models"]] == ["sie", "die", "die-irb"]
        assert payload["models"][0]["loss_pct_vs_sie"] == 0.0
        assert all(m["ipc"] > 0 for m in payload["models"])


class TestExperimentSeed:
    def test_seed_changes_the_result(self, capsys):
        assert main(["experiment", "F6", "--apps", "gzip", "--n", "3000"]) == 0
        seed1 = capsys.readouterr().out
        assert main(
            ["experiment", "F6", "--apps", "gzip", "--n", "3000", "--seed", "7"]
        ) == 0
        seed7 = capsys.readouterr().out
        assert seed1 != seed7


class TestCampaignCommand:
    def test_campaign_matches_experiment_and_resumes(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        assert main(["experiment", "F5", "--apps", "gzip", "--n", "3000"]) == 0
        serial = capsys.readouterr().out
        args = [
            "campaign", "F5", "--apps", "gzip", "--n", "3000",
            "--jobs", "2", "--store-dir", store_dir, "--quiet",
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert serial.strip() in first.out
        assert "0 store hit(s)" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "0 simulation(s) run" in second.err

    def test_campaign_multiple_ids(self, capsys, tmp_path):
        args = [
            "campaign", "F6", "F10", "--apps", "gzip", "--n", "3000",
            "--store-dir", str(tmp_path / "store"), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "F6" in out and "F10" in out

    def test_campaign_no_store_runs_everything(self, capsys, tmp_path):
        args = [
            "campaign", "F6", "--apps", "gzip", "--n", "3000",
            "--no-store", "--quiet",
        ]
        assert main(args) == 0
        assert "0 store hit(s)" in capsys.readouterr().err
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "0 store hit(s)" in err and "0 simulation(s)" not in err

    def test_campaign_clear_store(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        base = [
            "campaign", "F6", "--apps", "gzip", "--n", "3000",
            "--store-dir", store_dir, "--quiet",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--clear-store"]) == 0
        err = capsys.readouterr().err
        assert "store cleared" in err and "0 store hit(s)" in err

    def test_campaign_unknown_id_fails_cleanly(self, capsys):
        assert main(["campaign", "F99"]) == 2
        assert "F2" in capsys.readouterr().err


class TestJsonOutput:
    def test_json_mode_emits_valid_json(self, capsys):
        import json

        assert main(["run", "gzip", "--n", "3000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["committed"] == 3000
        assert "ipc" in payload and payload["ipc"] > 0

    def test_json_mode_names_fu_classes(self, capsys):
        import json

        assert main(["run", "gzip", "--n", "3000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "INT_ALU" in payload["fu_issued"]


class TestStoreCommands:
    def warm(self, store_dir, backend="dir"):
        args = [
            "campaign", "F6", "--apps", "gzip", "--n", "3000",
            "--store-dir", store_dir, "--backend", backend, "--quiet",
        ]
        assert main(args) == 0

    def test_store_stats_table_and_json(self, capsys, tmp_path):
        import json

        store_dir = str(tmp_path / "store")
        self.warm(store_dir)
        capsys.readouterr()
        assert main(["store", "stats", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "store: dir:" in out and "result:" in out and "total:" in out
        assert main(["store", "stats", "--store-dir", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"]["result"] >= 1
        assert payload["total_bytes"] > 0

    def test_store_gc_dry_run_then_real(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        self.warm(str(store_dir))
        capsys.readouterr()
        shard = next(p for p in store_dir.iterdir() if p.is_dir())
        torn = shard / ".tmp-crashed.json"
        torn.write_text("{ torn")
        assert main(["store", "gc", "--store-dir", str(store_dir), "--dry-run"]) == 0
        assert "would remove 1 item(s)" in capsys.readouterr().out
        assert torn.exists()
        assert main(["store", "gc", "--store-dir", str(store_dir)]) == 0
        assert "removed 1 item(s)" in capsys.readouterr().out
        assert not torn.exists()

    def test_store_migrate_then_sqlite_resume(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        self.warm(store_dir)  # grown through the plain dir backend
        capsys.readouterr()
        assert main(["store", "migrate", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "indexed" in out and "0 entr" not in out
        # The migrated index answers a warm sqlite-backed campaign.
        args = [
            "campaign", "F6", "--apps", "gzip", "--n", "3000",
            "--store-dir", store_dir, "--backend", "sqlite", "--quiet",
        ]
        assert main(args) == 0
        assert "0 simulation(s) run" in capsys.readouterr().err

    def test_store_migrate_rejects_urls(self, capsys):
        assert main(["store", "migrate", "--store-dir", "http://x:1"]) == 2
        assert "local store" in capsys.readouterr().err


class TestStreamingFlag:
    def test_campaign_stream_matches_serial(self, capsys, tmp_path):
        base = ["campaign", "F6", "--apps", "gzip", "--n", "3000", "--quiet"]
        assert main(base + ["--store-dir", str(tmp_path / "a")]) == 0
        serial = capsys.readouterr().out
        stream = base + [
            "--store-dir", str(tmp_path / "b"), "--jobs", "2", "--stream",
        ]
        assert main(stream) == 0
        assert capsys.readouterr().out == serial
        assert main(stream) == 0
        warm = capsys.readouterr()
        assert warm.out == serial
        assert "0 simulation(s) run" in warm.err
