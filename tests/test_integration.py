"""Cross-model integration invariants on real synthetic workloads.

These encode the paper's qualitative structure: the orderings that must
hold for the reproduction to be meaningful at all.
"""

import pytest

from repro.core import MachineConfig
from repro.simulation import get_trace, simulate

N = 8_000
APPS = ("gzip", "art", "ammp")


@pytest.fixture(scope="module", params=APPS)
def app_results(request):
    trace = get_trace(request.param, N)
    return request.param, {
        "sie": simulate(trace, "sie"),
        "die": simulate(trace, "die"),
        "die-irb": simulate(trace, "die-irb"),
        "die-2xalu": simulate(
            trace, "die", config=MachineConfig.baseline().scaled(alu=2)
        ),
        "die-all2x": simulate(
            trace, "die", config=MachineConfig.baseline().scaled(alu=2, ruu=2, widths=2)
        ),
    }


class TestOrderings:
    def test_die_loses_to_sie(self, app_results):
        app, r = app_results
        assert r["die"].ipc <= r["sie"].ipc * 1.001

    def test_irb_recovers_part_of_the_loss(self, app_results):
        app, r = app_results
        assert r["die-irb"].ipc >= r["die"].ipc * 0.995

    def test_more_alus_never_hurt(self, app_results):
        app, r = app_results
        assert r["die-2xalu"].ipc >= r["die"].ipc * 0.995

    def test_full_doubling_approaches_sie(self, app_results):
        app, r = app_results
        assert r["die-all2x"].ipc >= r["die"].ipc
        assert r["die-all2x"].ipc >= 0.85 * r["sie"].ipc

    def test_die_irb_bounded_by_sie(self, app_results):
        app, r = app_results
        assert r["die-irb"].ipc <= r["sie"].ipc * 1.001


class TestCommitCorrectness:
    def test_all_models_commit_the_whole_trace(self, app_results):
        app, r = app_results
        for result in r.values():
            assert result.stats.committed == N

    def test_die_checks_every_pair(self, app_results):
        app, r = app_results
        assert r["die"].stats.pairs_checked == N
        assert r["die"].stats.check_mismatches == 0

    def test_memory_traffic_identical_across_sie_and_die(self, app_results):
        app, r = app_results
        assert (
            r["die"].pipeline.hier.l1d.stats.accesses
            == r["sie"].pipeline.hier.l1d.stats.accesses
        )


class TestPaperShape:
    """The coarse shape anchors from the paper's text."""

    def test_art_is_window_bound(self):
        trace = get_trace("art", N)
        sie = simulate(trace, "sie").ipc
        die = simulate(trace, "die").ipc
        die_2xruu = simulate(
            trace, "die", config=MachineConfig.baseline().scaled(ruu=2)
        ).ipc
        loss = 100 * (sie - die) / sie
        loss_2xruu = 100 * (sie - die_2xruu) / sie
        assert loss > 30  # the paper's worst case (~43%)
        assert loss_2xruu < loss / 2  # 2xRUU recovers art best

    def test_ammp_is_nearly_free(self):
        trace = get_trace("ammp", N)
        sie = simulate(trace, "sie").ipc
        die = simulate(trace, "die").ipc
        assert 100 * (sie - die) / sie < 8  # the paper's ~1% outlier

    def test_gzip_is_alu_bound(self):
        trace = get_trace("gzip", N)
        sie = simulate(trace, "sie").ipc
        die = simulate(trace, "die").ipc
        die_2xalu = simulate(
            trace, "die", config=MachineConfig.baseline().scaled(alu=2)
        ).ipc
        assert die_2xalu > die  # ALUs are a real constraint
        gap_recovered = (die_2xalu - die) / (sie - die)
        assert gap_recovered > 0.3
