"""Skip-equivalence: quiescent-cycle fast-forward must be invisible.

Every statistic a run produces — cycle counts, stall breakdowns, fault
outcomes, telemetry timelines — must be byte-identical whether the
pipeline steps through quiescent cycles or skips over them.  These tests
run each model twice, once with fast-forward enabled (the default) and
once with the ``REPRO_NO_SKIP=1`` escape hatch, and compare everything.
"""

from __future__ import annotations

import pytest

from repro.core import DeadlockError
from repro.isa import Opcode, int_reg
from repro.redundancy import EXEC_PRIMARY, Fault, FaultInjector
from repro.redundancy.faults import IRB_ENTRY
from repro.simulation import MODELS, get_trace, simulate
from repro.telemetry import MetricsCollector, RecordingTracer
from repro.telemetry.events import CycleEvent, FaultEvent

from helpers import addi, assemble
from repro.workloads.executor import FunctionalExecutor

N_INSTS = 2_500

R1, R2, R3 = int_reg(1), int_reg(2), int_reg(3)


def run_once(monkeypatch, trace, model, skip, **kwargs):
    """Simulate ``trace`` with fast-forward forced on or off."""
    with monkeypatch.context() as patch:
        if skip:
            patch.delenv("REPRO_NO_SKIP", raising=False)
        else:
            patch.setenv("REPRO_NO_SKIP", "1")
        return simulate(trace, model, **kwargs)


def repetitive_trace(iterations=40):
    """A loop whose body repeats operand values every iteration."""
    ops = [addi(R1, 0, 5), addi(R2, 0, 7), (Opcode.ADD, R3, R1, R2, 0)]
    program = assemble(ops)  # + JUMP back: 4 insts per iteration
    return FunctionalExecutor(program).run(4 * iterations)


class TestStatsIdentity:
    """SimStats.to_dict() equality for every model on real workloads."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    @pytest.mark.parametrize("app", ["gzip", "equake"])
    def test_identical_stats(self, monkeypatch, model, app):
        trace = get_trace(app, N_INSTS)
        fast = run_once(monkeypatch, trace, model, skip=True)
        slow = run_once(monkeypatch, trace, model, skip=False)
        assert fast.stats.to_dict() == slow.stats.to_dict()

    def test_escape_hatch_disables_skipping(self, monkeypatch):
        trace = get_trace("gzip", N_INSTS)
        slow = run_once(monkeypatch, trace, "sie", skip=False)
        assert slow.pipeline.fast_forward is False
        assert slow.pipeline.ff_spans == 0
        assert slow.pipeline.ff_cycles == 0

    def test_skipping_actually_happens(self, monkeypatch):
        # equake is memory-bound: long L2-miss shadows are quiescent, so
        # a run that never fast-forwards means the optimisation is dead.
        trace = get_trace("equake", N_INSTS)
        fast = run_once(monkeypatch, trace, "sie", skip=True)
        assert fast.pipeline.fast_forward is True
        assert fast.pipeline.ff_spans > 0
        assert fast.pipeline.ff_cycles > 0


class TestFaultIdentity:
    """No armed injection cycle is ever skipped."""

    def test_exec_fault_identical(self, monkeypatch):
        trace = get_trace("gzip", N_INSTS)
        results = {}
        for skip in (True, False):
            injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=700)])
            result = run_once(
                monkeypatch, trace, "die", skip=skip, fault_injector=injector
            )
            results[skip] = (result.stats.to_dict(), injector.log.injected,
                            injector.log.latent)
        assert results[True] == results[False]

    def test_irb_cell_fault_identical(self, monkeypatch):
        # IRB_ENTRY faults are armed by *cycle*, the hard case for
        # skipping: the fast-forward target must stop at the armed cycle.
        trace = repetitive_trace()
        results = {}
        for skip in (True, False):
            injector = FaultInjector([Fault(kind=IRB_ENTRY, pc=8, cycle=30)])
            result = run_once(
                monkeypatch, trace, "die-irb", skip=skip, fault_injector=injector
            )
            results[skip] = (result.stats.to_dict(), injector.log.injected,
                            injector.log.latent)
        assert results[True][0]["check_mismatches"] >= 1
        assert results[True] == results[False]

    def test_fault_event_cycles_identical(self, monkeypatch):
        # The FaultEvent stream pins the exact cycle each fault resolved:
        # equality proves the injection landed on the same cycle, not
        # merely that the aggregate statistics happened to agree.
        trace = repetitive_trace()
        streams = {}
        for skip in (True, False):
            injector = FaultInjector([Fault(kind=IRB_ENTRY, pc=8, cycle=30)])
            tracer = RecordingTracer()
            run_once(
                monkeypatch, trace, "die-irb", skip=skip,
                fault_injector=injector, tracer=tracer,
            )
            streams[skip] = [
                event for event in tracer.events if isinstance(event, FaultEvent)
            ]
        assert streams[True]
        assert streams[True] == streams[False]


class TestTelemetryIdentity:
    """Tracers observe the same event stream and never perturb the run."""

    def test_cycle_event_stream_identical(self, monkeypatch):
        trace = get_trace("equake", N_INSTS)
        streams = {}
        for skip in (True, False):
            tracer = RecordingTracer()
            run_once(monkeypatch, trace, "die", skip=skip, tracer=tracer)
            streams[skip] = [
                event for event in tracer.events if isinstance(event, CycleEvent)
            ]
        assert streams[True] == streams[False]

    def test_metrics_snapshot_identical(self, monkeypatch):
        trace = get_trace("equake", N_INSTS)
        snapshots = {}
        for skip in (True, False):
            collector = MetricsCollector()
            run_once(monkeypatch, trace, "die-irb", skip=skip, tracer=collector)
            snapshots[skip] = collector.snapshot()
        assert snapshots[True] == snapshots[False]

    def test_tracer_does_not_change_stats(self, monkeypatch):
        trace = get_trace("gzip", N_INSTS)
        plain = run_once(monkeypatch, trace, "die", skip=True)
        traced = run_once(
            monkeypatch, trace, "die", skip=True, tracer=RecordingTracer()
        )
        assert plain.stats.to_dict() == traced.stats.to_dict()


class TestDeadlockIdentity:
    """The deadlock guard fires at the same point with the same message."""

    @pytest.mark.parametrize("model", ["sie", "die-irb", "srt"])
    def test_deadlock_message_identical(self, monkeypatch, model):
        trace = get_trace("gzip", N_INSTS)
        messages = {}
        for skip in (True, False):
            with pytest.raises(DeadlockError) as excinfo:
                run_once(monkeypatch, trace, model, skip=skip, max_cycles=300)
            messages[skip] = str(excinfo.value)
        assert messages[True] == messages[False]
