"""Session-scoped fixtures shared across the test suite.

Workload generation and simulation are deterministic, so traces and
baseline results are built once per session and reused; individual tests
must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import MachineConfig
from repro.simulation import get_trace, simulate


SMALL_N = 6_000


@pytest.fixture(scope="session")
def gzip_trace():
    return get_trace("gzip", SMALL_N)


@pytest.fixture(scope="session")
def ammp_trace():
    return get_trace("ammp", SMALL_N)


@pytest.fixture(scope="session")
def art_trace():
    return get_trace("art", SMALL_N)


@pytest.fixture(scope="session")
def baseline_config():
    return MachineConfig.baseline()


@pytest.fixture(scope="session")
def gzip_sie(gzip_trace):
    return simulate(gzip_trace, "sie")


@pytest.fixture(scope="session")
def gzip_die(gzip_trace):
    return simulate(gzip_trace, "die")


@pytest.fixture(scope="session")
def gzip_die_irb(gzip_trace):
    return simulate(gzip_trace, "die-irb")
