"""Session-scoped fixtures shared across the test suite.

Workload generation and simulation are deterministic, so traces and
baseline results are built once per session and reused; individual tests
must not mutate them.

This file also owns the randomized-testing policy:

* Hypothesis profiles — ``ci`` (deadline off, full example budget, used
  whenever ``CI`` is set) and ``dev`` (small example budget for fast
  local iteration).  Override locally with ``HYPOTHESIS_PROFILE=ci``.
* Replay hints — when a randomized test fails, a ``replay`` section is
  attached to the report with the exact one-line command that reproduces
  it: fuzz-driven tests register ``repro fuzz --replay <key>`` through
  the ``replay_hint`` fixture, and hypothesis tests get their node id
  (the example database replays the stored counterexample).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.core import MachineConfig
from repro.simulation import get_trace, simulate


SMALL_N = 6_000

hypothesis_settings.register_profile(
    "ci",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile(
    "dev",
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev")
)


@pytest.fixture
def replay_hint(request):
    """Register the one-line replay command for a randomized test.

    On failure the command is attached to the report as a ``replay``
    section (see ``pytest_runtest_makereport``).
    """

    def _record(command: str) -> None:
        request.node._replay_hint = command

    return _record


def _is_hypothesis_test(item) -> bool:
    function = getattr(item, "obj", None)
    return bool(getattr(function, "is_hypothesis_test", False))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    hint = getattr(item, "_replay_hint", None)
    if hint is None and _is_hypothesis_test(item):
        hint = (
            f'PYTHONPATH=src python -m pytest "{item.nodeid}"'
            "  # hypothesis replays the stored counterexample"
        )
    if hint:
        report.sections.append(("replay", f"REPLAY: {hint}"))


@pytest.fixture(scope="session")
def gzip_trace():
    return get_trace("gzip", SMALL_N)


@pytest.fixture(scope="session")
def ammp_trace():
    return get_trace("ammp", SMALL_N)


@pytest.fixture(scope="session")
def art_trace():
    return get_trace("art", SMALL_N)


@pytest.fixture(scope="session")
def baseline_config():
    return MachineConfig.baseline()


@pytest.fixture(scope="session")
def gzip_sie(gzip_trace):
    return simulate(gzip_trace, "sie")


@pytest.fixture(scope="session")
def gzip_die(gzip_trace):
    return simulate(gzip_trace, "die")


@pytest.fixture(scope="session")
def gzip_die_irb(gzip_trace):
    return simulate(gzip_trace, "die-irb")
