"""Unit tests for the register namespace."""

import pytest

from repro.isa import (
    FP_BASE,
    LINK_REG,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    ZERO_REG,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_name,
)


class TestRegisterIds:
    def test_counts(self):
        assert NUM_REGS == NUM_INT_REGS + NUM_FP_REGS == 64

    def test_int_reg_identity(self):
        assert int_reg(0) == ZERO_REG == 0
        assert int_reg(31) == LINK_REG == 31

    def test_fp_reg_offsets(self):
        assert fp_reg(0) == FP_BASE
        assert fp_reg(31) == NUM_REGS - 1

    def test_int_reg_range_check(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            int_reg(-1)

    def test_fp_reg_range_check(self):
        with pytest.raises(ValueError):
            fp_reg(32)

    def test_is_fp_reg_partition(self):
        for reg in range(NUM_REGS):
            assert is_fp_reg(reg) == (reg >= FP_BASE)


class TestRegNames:
    def test_int_names(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"

    def test_fp_names(self):
        assert reg_name(FP_BASE) == "f0"
        assert reg_name(FP_BASE + 5) == "f5"

    def test_none_renders_dash(self):
        assert reg_name(None) == "-"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            reg_name(64)
