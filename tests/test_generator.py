"""Tests for the synthetic program generator and workload profiles."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Opcode, is_cond_branch
from repro.workloads import (
    APP_NAMES,
    SPEC2000_PROFILES,
    WorkloadProfile,
    execute_program,
    generate_program,
    get_profile,
    load_workload,
)
from repro.workloads.generator import INT_ACCS, R_CHASE


class TestProfiles:
    def test_twelve_applications(self):
        assert len(SPEC2000_PROFILES) == 12
        assert len(set(APP_NAMES)) == 12

    def test_lookup_by_name(self):
        assert get_profile("gzip").name == "gzip"

    def test_lookup_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="gzip"):
            get_profile("doom")

    def test_mix_normalization(self):
        mix = get_profile("gzip").normalized_mix()
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_validation_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mix={"bogus": 1.0})

    def test_validation_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mix={"int_alu": 1.0}, invariant_frac=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="x", mix={"int_alu": 1.0}, invariant_frac=0.8, induction_frac=0.3
            )

    def test_validation_rejects_non_pow2_window(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mix={"int_alu": 1.0}, table_window_words=48)

    def test_fp_profiles_marked(self):
        for name in ("wupwise", "art", "equake", "ammp"):
            assert get_profile(name).fp_program
        for name in ("gzip", "gcc", "mcf"):
            assert not get_profile(name).fp_program


class TestGeneratedPrograms:
    @pytest.fixture(scope="class", params=["gzip", "gcc", "art", "ammp", "mcf"])
    def program(self, request):
        return generate_program(get_profile(request.param))

    def test_pcs_are_dense(self, program):
        for index, inst in enumerate(program.insts):
            assert inst.pc == index * 4

    def test_branch_targets_inside_image(self, program):
        limit = len(program.insts) * 4
        for inst in program.insts:
            if inst.target is not None:
                assert 0 <= inst.target < limit

    def test_branch_targets_never_split_emissions(self, program):
        """A forward skip may not land between an address computation and
        its load — the bug class where r-values leak across arrays."""
        # Targets must never point at a LOAD/FLOAD whose address register
        # was defined by one of the skipped instructions.
        by_pc = {inst.pc: inst for inst in program.insts}
        for inst in program.insts:
            if is_cond_branch(inst.opcode):
                target = by_pc[inst.target]
                if target.opcode in (Opcode.LOAD, Opcode.FLOAD):
                    skipped = [
                        by_pc[pc] for pc in range(inst.pc + 4, inst.target, 4)
                    ]
                    assert all(s.dst != target.src1 for s in skipped)

    def test_arrays_do_not_overlap(self, program):
        spans = sorted((a.base, a.limit) for a in program.arrays)
        for (b1, l1), (b2, _) in zip(spans, spans[1:]):
            assert l1 <= b2

    def test_deterministic_generation(self):
        p1 = generate_program(get_profile("gzip"), seed=7)
        p2 = generate_program(get_profile("gzip"), seed=7)
        assert [str(i) for i in p1.insts] == [str(i) for i in p2.insts]

    def test_different_seeds_differ(self):
        p1 = generate_program(get_profile("gzip"), seed=1)
        p2 = generate_program(get_profile("gzip"), seed=2)
        assert [str(i) for i in p1.insts] != [str(i) for i in p2.insts]

    def test_static_footprint_scales_with_kernels(self):
        small = generate_program(get_profile("gzip"))
        large = generate_program(get_profile("gcc"))
        assert large.static_footprint > small.static_footprint


class TestGeneratedTraces:
    def test_trace_length_exact(self):
        trace = load_workload("gzip", n_insts=3000)
        assert len(trace) == 3000

    def test_trace_determinism(self):
        t1 = load_workload("vpr", n_insts=2000)
        t2 = load_workload("vpr", n_insts=2000)
        assert [(i.pc, i.result) for i in t1] == [(i.pc, i.result) for i in t2]

    def test_mix_roughly_matches_profile(self):
        trace = load_workload("gzip", n_insts=20000)
        summary = trace.summary()
        # Loads cost extra address-forming instructions, so realized
        # fractions sit below nominal mix weights but must be present.
        assert 0.05 < summary.load_frac < 0.30
        assert 0.02 < summary.store_frac < 0.20
        assert 0.04 < summary.branch_frac < 0.25

    def test_fp_program_has_fp_work(self):
        from repro.isa import FUClass

        summary = load_workload("wupwise", n_insts=15000).summary()
        assert summary.fu_mix.get(FUClass.FP_ADD, 0) > 0.05
        assert summary.fu_mix.get(FUClass.FP_MULDIV, 0) > 0.02

    def test_cold_ranges_only_for_far_memory(self):
        assert load_workload("art", n_insts=2000).cold_ranges
        assert not load_workload("ammp", n_insts=2000).cold_ranges

    def test_pointer_chase_serializes_through_dedicated_register(self):
        program = generate_program(get_profile("mcf"))
        chase_loads = [
            inst
            for inst in program.insts
            if inst.opcode is Opcode.LOAD and inst.dst == R_CHASE
        ]
        assert chase_loads, "mcf must contain chase loads"
        # No other instruction may clobber the chase register.
        for inst in program.insts:
            if inst.dst == R_CHASE and inst.opcode is not Opcode.LOAD:
                assert inst.opcode is Opcode.ADDI  # prologue init only

    def test_accumulators_are_loop_carried(self):
        program = generate_program(get_profile("gzip"))
        acc_updates = [
            inst
            for inst in program.insts
            if inst.dst in INT_ACCS and inst.src1 == inst.dst
        ]
        assert acc_updates, "accumulator updates must exist"

    def test_value_repetition_present(self):
        # The IRB's food: traces must show consecutive operand repetition.
        summary = load_workload("vortex", n_insts=20000).summary()
        assert summary.value_repetition > 0.15


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    name=st.sampled_from(["gzip", "equake", "mcf"]),
)
def test_any_seed_generates_runnable_program(seed, name):
    """Property: every seed yields a program the executor can run."""
    program = generate_program(get_profile(name), seed=seed)
    trace = execute_program(program, 1500)
    assert len(trace) == 1500


@settings(max_examples=8, deadline=None)
@given(
    inv=st.floats(0.0, 0.6),
    dep=st.floats(1.5, 12.0),
    acc=st.floats(0.0, 0.6),
)
def test_profile_parameter_space_is_safe(inv, dep, acc):
    """Property: generator tolerates the whole advertised parameter space."""
    profile = dataclasses.replace(
        get_profile("gzip"),
        invariant_frac=inv,
        dep_distance=dep,
        accum_frac=acc,
        induction_frac=min(0.1, 1.0 - inv),
    )
    trace = execute_program(generate_program(profile), 800)
    assert len(trace) == 800


class TestRegisterContracts:
    """The generator's register-allocation contract: special registers
    are written only where their role allows, or values silently corrupt
    (the bug class behind broken chase chains)."""

    @pytest.mark.parametrize("name", ["gzip", "mcf", "ammp", "gcc", "art"])
    def test_invariant_pool_never_written_after_prologue(self, name):
        from repro.workloads.generator import INT_POOL, FP_POOL
        from repro.isa import Opcode

        program = generate_program(get_profile(name))
        prologue_end = program.loop_entry
        for inst in program.insts:
            if inst.pc >= prologue_end and inst.dst is not None:
                assert inst.dst not in INT_POOL, str(inst)
                assert inst.dst not in FP_POOL, str(inst)

    @pytest.mark.parametrize("name", ["gzip", "mcf", "ammp"])
    def test_base_registers_only_written_in_prologue(self, name):
        from repro.workloads.generator import (
            R_FPMAIN_BASE,
            R_FPTABLE_BASE,
            R_GRAPH_BASE,
            R_HEAP_BASE,
            R_MAIN_BASE,
            R_TABLE_BASE,
        )

        bases = {
            R_MAIN_BASE,
            R_TABLE_BASE,
            R_FPMAIN_BASE,
            R_FPTABLE_BASE,
            R_GRAPH_BASE,
            R_HEAP_BASE,
        }
        program = generate_program(get_profile(name))
        for inst in program.insts:
            if inst.pc >= program.loop_entry and inst.dst is not None:
                assert inst.dst not in bases, str(inst)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_helpers_never_call(self, name):
        # Helper bodies must be leaf functions: a nested CALL would
        # clobber the single link register.
        program = generate_program(get_profile(name))
        by_pc = {i.pc: i for i in program.insts}
        # find helper regions: between a JUMP-over and main loop entry
        for inst in program.insts:
            if inst.opcode is Opcode.RET:
                # scan back to region start (previous RET or prologue end)
                pc = inst.pc - 4
                while pc >= 0 and by_pc[pc].opcode not in (Opcode.RET, Opcode.JUMP):
                    assert by_pc[pc].opcode is not Opcode.CALL
                    pc -= 4
