"""Shared test helpers: hand-built programs and micro-traces.

Directed pipeline tests need tiny, fully-controlled instruction streams.
``assemble`` builds a :class:`Program` from a compact op list and
``straightline`` runs it functionally into a trace, so the timing models
under test consume exactly the instructions the test wrote.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.isa import Opcode, StaticInst
from repro.workloads import Program, Trace
from repro.workloads.executor import FunctionalExecutor
from repro.workloads.program import DataArray


def assemble(ops: Sequence[Tuple], arrays: Optional[List[DataArray]] = None) -> Program:
    """Build a Program from ``(opcode, dst, src1, src2, imm[, target])`` rows.

    Fields may be ``None``; a trailing JUMP back to pc 0 is appended so the
    image is a closed loop (the executor never falls off the end).
    """
    insts = []
    for index, row in enumerate(ops):
        opcode, dst, src1, src2, imm = row[:5]
        target = row[5] if len(row) > 5 else None
        insts.append(
            StaticInst(
                pc=index * 4,
                opcode=opcode,
                dst=dst,
                src1=src1,
                src2=src2,
                imm=imm,
                target=target,
            )
        )
    insts.append(
        StaticInst(pc=len(ops) * 4, opcode=Opcode.JUMP, target=0)
    )
    return Program(name="test", insts=insts, arrays=arrays or [])


def straightline(ops: Sequence[Tuple], count: Optional[int] = None) -> Trace:
    """Assemble ``ops`` and execute ``count`` instructions (default: one pass)."""
    program = assemble(ops)
    executor = FunctionalExecutor(program)
    return executor.run(count if count is not None else len(ops))


def addi(dst: int, src: int, imm: int) -> Tuple:
    """Shorthand for an ADDI row."""
    return (Opcode.ADDI, dst, src, None, imm)


def nop_row() -> Tuple:
    return (Opcode.NOP, None, None, None, 0)
