"""Tests for the differential fuzzing + invariant validation subsystem.

Covers the adversarial profile sampler, the nine-model harness, every
invariant checker (clean and deliberately-tampered cases), the
delta-debugging shrinker, the replayable corpus (store side-cars), the
engine end-to-end with a synthetic injected divergence, parallel/serial
byte-identity, and the telemetry surface (divergence events in the
metrics collector and the Perfetto exporter).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign.store import ResultStore
from repro.redundancy import EXEC_DUP, Fault
from repro.simulation import MODELS
from repro.telemetry import DivergenceEvent, MetricsCollector, chrome_trace
from repro.validation import (
    DEFAULT_CASE_INSTS,
    FAMILIES,
    CommitAuditor,
    Divergence,
    Exemption,
    build_case_program,
    case_document,
    case_seed,
    case_spec,
    check_case,
    check_determinism,
    fuzz_key,
    is_exempt,
    jitter_slack,
    models_for,
    program_from_dict,
    program_to_dict,
    rebuild,
    replay_case,
    reuse_slack,
    run_case,
    run_fuzz,
    run_one_case,
    sample_profile,
    shrink_case,
)
from repro.validation import invariants as invariants_module
from repro.validation.corpus import faults_from_spec
from repro.validation.engine import SYNTHETIC_BUG_MODEL
from repro.workloads import FunctionalExecutor

ALL_MODELS = tuple(sorted(MODELS))
FAST_MODELS = ("sie", "die", "die-irb")


@pytest.fixture(scope="module")
def small_case():
    """One adversarial program run through a fast model subset."""
    _, program = build_case_program(seed=1, index=0)
    trace = FunctionalExecutor(program).run(400)
    return run_case(trace, FAST_MODELS)


@pytest.fixture(scope="module")
def fuzz_program():
    _, program = build_case_program(seed=1, index=0)
    return program


# ---------------------------------------------------------------------------
# Adversarial sampler
# ---------------------------------------------------------------------------


def test_sampler_is_deterministic():
    family_a, profile_a = sample_profile(12345)
    family_b, profile_b = sample_profile(12345)
    assert family_a == family_b
    assert profile_a == profile_b


def test_sampler_covers_every_family():
    seen = {sample_profile(case_seed(1, index))[0] for index in range(200)}
    assert seen == set(FAMILIES)


def test_sampled_profiles_generate_runnable_programs():
    for index in (0, 7, 42):
        _, program = build_case_program(seed=3, index=index)
        trace = FunctionalExecutor(program).run(200)
        assert len(trace) == 200


# ---------------------------------------------------------------------------
# Invariant checkers: clean case, then deliberate tampering
# ---------------------------------------------------------------------------


def test_clean_case_has_no_divergences(small_case):
    active, exempted = check_case(small_case)
    assert active == []
    assert exempted == []


def test_determinism_check_is_clean(small_case):
    assert check_determinism(small_case, "die") == []


def _tampered(case, model):
    """A shallow copy of ``case`` whose ``model`` run can be doctored."""
    runs = dict(case.runs)
    run = runs[model]
    runs[model] = dataclasses.replace(
        run, stats=dataclasses.replace(run.stats)
    )
    return dataclasses.replace(case, runs=runs), runs[model]


def test_deadlock_is_reported(small_case):
    case, run = _tampered(small_case, "die")
    run.error = "deadlock at cycle 7"
    active, _ = check_case(case)
    assert Divergence("no-deadlock", "die", "deadlock at cycle 7") in active


def test_commit_count_mismatch_is_reported(small_case):
    case, run = _tampered(small_case, "sie")
    run.stats.committed -= 1
    active, _ = check_case(case)
    assert any(
        d.invariant == "commit-exactly-once" and d.model == "sie" for d in active
    )


def test_oracle_order_violation_is_reported(small_case):
    case, run = _tampered(small_case, "sie")
    original = run.auditor
    doctored = CommitAuditor()
    doctored.commits = dict(original.commits)
    doctored.fetches = dict(original.fetches)
    doctored.primary_order = list(original.primary_order)
    doctored.primary_order[0], doctored.primary_order[1] = (
        doctored.primary_order[1],
        doctored.primary_order[0],
    )
    run.auditor = doctored
    active, _ = check_case(case)
    assert any(d.invariant == "oracle-match" and d.model == "sie" for d in active)


def test_fault_counters_violate_fault_free_clean(small_case):
    case, run = _tampered(small_case, "die")
    run.stats.check_mismatches = 2
    active, _ = check_case(case)
    assert any(
        d.invariant == "fault-free-clean" and d.model == "die" for d in active
    )


def test_redundant_model_beating_sie_is_reported(small_case):
    case, run = _tampered(small_case, "die")
    run.stats.cycles = case.runs["sie"].stats.cycles // 2
    active, _ = check_case(case)
    assert any(d.invariant == "redundancy-never-wins" for d in active)


def test_small_timing_inversions_are_jitter_not_findings(small_case):
    """Inversions inside the documented slack do not fire (see
    docs/VALIDATION.md: second-order scheduling jitter)."""
    case, run = _tampered(small_case, "die")
    run.stats.cycles = case.runs["sie"].stats.cycles - 1
    active, _ = check_case(case)
    assert not any(d.invariant == "redundancy-never-wins" for d in active)


def test_jitter_slack_floor_and_scale():
    assert jitter_slack(100) == 16  # absolute floor for short runs
    assert jitter_slack(10_000) == 200  # 2% of the run
    assert reuse_slack(100) == 16
    assert reuse_slack(10_000) == 1_000  # 10%: the IRB pipeline is not free


def test_irb_slower_than_die_is_reported(small_case):
    case, run = _tampered(small_case, "die-irb")
    run.stats.cycles = case.runs["die"].stats.cycles * 2
    active, _ = check_case(case)
    assert any(d.invariant == "irb-bounded" and d.model == "die-irb" for d in active)


def test_exemptions_filter_divergences(small_case, monkeypatch):
    case, run = _tampered(small_case, "die")
    run.error = "deadlock"
    monkeypatch.setattr(
        invariants_module,
        "EXEMPTIONS",
        (Exemption("no-deadlock", "die", "testing the registry"),),
    )
    active, exempted = check_case(case)
    assert not any(d.invariant == "no-deadlock" for d in active)
    assert any(d.invariant == "no-deadlock" for d in exempted)
    assert is_exempt(Divergence("no-deadlock", "die", "x")) is not None
    assert is_exempt(Divergence("no-deadlock", "sie", "x")) is None


def test_divergences_are_emitted_to_tracer(small_case):
    case, run = _tampered(small_case, "die")
    run.error = "deadlock"
    collector = MetricsCollector()
    check_case(case, tracer=collector)
    assert collector.divergences == {"no-deadlock": 1}
    assert collector.snapshot()["divergences"] == {"no-deadlock": 1}


def test_models_for_includes_context():
    assert models_for("redundancy-never-wins", "die") == ("sie", "die")
    assert models_for("irb-bounded", "die-irb") == ("sie", "die", "die-irb")
    assert models_for("oracle-match", "srt") == ("srt",)


# ---------------------------------------------------------------------------
# Corpus serialization + store side-cars
# ---------------------------------------------------------------------------


def test_program_roundtrips_through_dict(fuzz_program):
    restored = program_from_dict(program_to_dict(fuzz_program))
    assert restored == fuzz_program


def test_fuzz_key_is_stable_and_content_addressed(fuzz_program):
    spec_a = case_spec(fuzz_program, 100, FAST_MODELS)
    spec_b = case_spec(fuzz_program, 100, FAST_MODELS)
    assert fuzz_key(spec_a) == fuzz_key(spec_b)
    assert fuzz_key(case_spec(fuzz_program, 101, FAST_MODELS)) != fuzz_key(spec_a)


def test_fault_plans_roundtrip_through_spec(fuzz_program):
    faults = {"die": [Fault(EXEC_DUP, seq=2)]}
    spec = case_spec(fuzz_program, 50, ("die",), faults)
    document = json.loads(json.dumps(case_document(spec, [], meta={})))
    restored = faults_from_spec(document["spec"])
    assert restored == faults


def test_store_fuzz_side_cars(tmp_path, fuzz_program):
    store = ResultStore(tmp_path)
    spec = case_spec(fuzz_program, 64, FAST_MODELS)
    key = fuzz_key(spec)
    document = case_document(
        spec, [Divergence("no-deadlock", "die", "boom")], meta={"index": 0}
    )
    store.put_fuzz(key, document)
    assert store.get_fuzz(key) == json.loads(json.dumps(document))
    assert list(store.fuzz_keys()) == [key]
    # Fuzz side-cars never masquerade as campaign results.
    assert list(store.keys()) == []
    assert len(store) == 0
    assert store.get_fuzz("0" * 64) is None
    store.clear()
    assert list(store.fuzz_keys()) == []


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


def test_rebuild_remaps_pcs_and_targets(fuzz_program):
    keep = [i for i in range(len(fuzz_program.insts)) if i % 2 == 0]
    rebuilt = rebuild(fuzz_program, keep)
    assert rebuilt is not None
    for index, inst in enumerate(rebuilt.insts):
        assert inst.pc == 4 * index
        if inst.target is not None:
            assert 0 <= inst.target < 4 * len(rebuilt.insts)


def test_rebuild_of_nothing_is_none(fuzz_program):
    assert rebuild(fuzz_program, []) is None


def test_shrink_on_predicate_hits_single_instruction(fuzz_program):
    """A divergence caused by one opcode shrinks to (nearly) just it."""
    from collections import Counter

    marker = Counter(
        inst.opcode for inst in fuzz_program.insts
    ).most_common(1)[0][0]

    def reproduce_marker(program, n_insts):
        trace = FunctionalExecutor(program).run(min(n_insts, 64))
        return any(inst.opcode is marker for inst in trace)

    assert reproduce_marker(fuzz_program, 256)
    result = shrink_case(fuzz_program, 256, reproduce_marker)
    assert result.static_insts <= 4
    assert result.n_insts <= 256
    assert result.original_static == len(fuzz_program.insts)


# ---------------------------------------------------------------------------
# Engine end-to-end
# ---------------------------------------------------------------------------


def test_clean_fuzz_run(replay_hint):
    replay_hint("PYTHONPATH=src python -m repro fuzz --n 2 --seed 1 --no-store")
    report = run_fuzz(2, seed=1, n_insts=300, store=None)
    assert report.clean
    assert report.cases == 2
    assert report.models == ALL_MODELS


def test_synthetic_bug_is_found_shrunk_stored_and_replayed(tmp_path, replay_hint):
    store = ResultStore(tmp_path)
    report = run_fuzz(
        1, seed=7, n_insts=300, store=store, synthetic_bug=True
    )
    assert len(report.findings) == 1
    finding = report.findings[0]
    replay_hint(
        f"PYTHONPATH=src python -m repro fuzz --replay {finding.key} "
        f"--store-dir {tmp_path}"
    )
    assert any(
        d.invariant == "fault-free-clean" and d.model == SYNTHETIC_BUG_MODEL
        for d in finding.outcome.divergences
    )
    # Acceptance bar: the shrinker lands at <= 20 static instructions.
    assert finding.shrink is not None
    assert finding.shrink.static_insts <= 20
    assert finding.key in list(store.fuzz_keys())

    divergences, document = replay_case(finding.key, store)
    assert any(
        d.invariant == "fault-free-clean" and d.model == SYNTHETIC_BUG_MODEL
        for d in divergences
    )
    assert document["meta"]["index"] == 0


def test_replay_unknown_key_raises(tmp_path):
    with pytest.raises(KeyError):
        replay_case("f" * 64, ResultStore(tmp_path))


def test_parallel_fuzz_matches_serial():
    serial = run_fuzz(4, seed=2, models=FAST_MODELS, n_insts=200, store=None)
    parallel = run_fuzz(
        4, seed=2, models=FAST_MODELS, n_insts=200, store=None, jobs_n=2
    )
    assert serial.clean and parallel.clean
    assert serial.models == parallel.models == FAST_MODELS


def test_case_outcomes_identical_across_workers():
    """Worker processes must report byte-identically to in-process runs."""
    from repro.validation.engine import _case_worker

    args = (5, 3, 200, FAST_MODELS, False)
    assert _case_worker(args) == _case_worker(args)


def test_run_one_case_flags_injected_fault(fuzz_program):
    faults = {"die": [Fault(EXEC_DUP, seq=2)]}
    active, _ = run_one_case(fuzz_program, 200, ("sie", "die"), 0, faults=faults)
    assert any(
        d.invariant == "fault-free-clean" and d.model == "die" for d in active
    )


def test_default_case_budget_is_sane():
    assert DEFAULT_CASE_INSTS >= 500


# ---------------------------------------------------------------------------
# Pinned campaign findings (first 10k-case triage, seed 1, n_insts 500)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "index, slower_model, faster_model, models, slack_fn",
    [
        # DIE finished 26/3940 cycles ahead of SIE on a pointer-chase
        # trace: RUU-pressure-shifted dispatch realigned load timing.
        (5778, "sie", "die", ("sie", "die", "die-irb"), jitter_slack),
        # The worst SIE inversion on a short run: die-cluster-repl beat
        # SIE by 14/311 cycles (4.5%) — why jitter_slack has an
        # absolute floor, not just a percentage.
        (8169, "sie", "die-cluster-repl", ("sie", "die-cluster-repl"), jitter_slack),
        # DIE-IRB lost 20/2662 cycles to plain DIE: reused duplicates
        # arriving through the 3-cycle IRB pipeline retire later than
        # idle FUs would have executed them.
        (627, "die-irb", "die", ("sie", "die", "die-irb"), reuse_slack),
        # The worst IRB slowdown of the campaign: 66/1090 cycles (6.1%)
        # on a latency-bound trace where reuse structurally cannot pay.
        (321, "die-irb", "die", ("sie", "die", "die-irb"), reuse_slack),
    ],
)
def test_campaign_timing_inversions_stay_within_jitter(
    index, slower_model, faster_model, models, slack_fn
):
    """The triaged 10k-campaign inversions exist, and stay inside the
    documented slack — if either half fails, docs/VALIDATION.md's
    jitter analysis needs revisiting."""
    _, program = build_case_program(seed=1, index=index)
    trace = FunctionalExecutor(program).run(500)
    case = run_case(trace, models)
    slower = case.runs[slower_model].stats.cycles
    faster = case.runs[faster_model].stats.cycles
    # The inversion is real (the "wrong" model is genuinely slower)...
    assert slower > faster
    # ...but second-order: inside the documented slack.
    assert slower - faster <= slack_fn(slower)
    active, _ = run_one_case(program, 500, models, index)
    assert active == ()


# ---------------------------------------------------------------------------
# Telemetry surface
# ---------------------------------------------------------------------------


def test_divergence_event_in_chrome_trace():
    events = [
        DivergenceEvent(cycle=12, invariant="oracle-match", model="srt", detail="x")
    ]
    document = chrome_trace(events)
    names = [entry.get("name", "") for entry in document["traceEvents"]]
    assert any(name == "divergence:oracle-match" for name in names)


def test_metrics_collector_counts_divergences_by_invariant():
    collector = MetricsCollector()
    collector.emit(DivergenceEvent(1, "oracle-match", "sie", "a"))
    collector.emit(DivergenceEvent(2, "oracle-match", "die", "b"))
    collector.emit(DivergenceEvent(3, "no-deadlock", "srt", "c"))
    assert collector.divergences == {"no-deadlock": 1, "oracle-match": 2}
