"""The example scripts must stay runnable (tiny instruction counts)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "gzip", "3000")
        assert result.returncode == 0, result.stderr
        assert "SIE" in result.stdout and "IRB" in result.stdout

    def test_quickstart_rejects_unknown_workload(self):
        result = run_example("quickstart.py", "quake3")
        assert result.returncode != 0

    def test_resource_study(self):
        result = run_example("resource_study.py", "gzip,ammp", "3000")
        assert result.returncode == 0, result.stderr
        assert "2xALU" in result.stdout
        assert "recovers it best" in result.stdout

    def test_reliability_study(self):
        result = run_example("reliability_study.py", "gzip", "1")
        assert result.returncode == 0, result.stderr
        assert "coverage" in result.stdout
        assert "forward_both" in result.stdout

    def test_irb_tuning(self):
        result = run_example("irb_tuning.py", "gzip", "3000")
        assert result.returncode == 0, result.stderr
        assert "entries" in result.stdout and "read ports" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py", "4000")
        assert result.returncode == 0, result.stderr
        assert "checksum" in result.stdout and "decoder" in result.stdout
