"""Tests for the forwarding ablation variant (DIE-IRB-Fwd)."""

from repro.core import DUPLICATE, DynInst, PRIMARY
from repro.reuse import DIEIRBFwdPipeline
from repro.simulation import simulate


class TestForwardingVariant:
    def test_duplicates_wake_from_their_own_stream(self, gzip_trace):
        pipeline = DIEIRBFwdPipeline(gzip_trace)
        primary = DynInst(gzip_trace[0], PRIMARY)
        duplicate = DynInst(gzip_trace[0], DUPLICATE)
        assert pipeline._hook_source_stream(primary) == PRIMARY
        assert pipeline._hook_source_stream(duplicate) == DUPLICATE

    def test_commits_everything(self, gzip_trace):
        result = simulate(gzip_trace, "die-irb-fwd")
        assert result.stats.committed == len(gzip_trace)
        assert result.stats.check_mismatches == 0

    def test_forwarding_never_hurts(self, gzip_trace):
        plain = simulate(gzip_trace, "die-irb").stats.cycles
        fwd = simulate(gzip_trace, "die-irb-fwd").stats.cycles
        assert fwd <= plain * 1.02

    def test_still_reuses(self, gzip_trace):
        result = simulate(gzip_trace, "die-irb-fwd")
        assert result.stats.irb_reuse_hits > 0

    def test_bounded_by_sie(self, gzip_trace):
        sie = simulate(gzip_trace, "sie").ipc
        fwd = simulate(gzip_trace, "die-irb-fwd").ipc
        assert fwd <= sie * 1.001
