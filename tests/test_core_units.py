"""Unit tests for FU pool, machine config, stats and DynInst."""

import pytest

from repro.core import DUPLICATE, DynInst, FUPool, MachineConfig, PRIMARY, SimStats
from repro.isa import FUClass, Opcode, OpTiming, op_latency, op_timing
from repro.isa.instruction import TraceInst


def make_trace_inst(opcode=Opcode.ADD, seq=0, dst=1, src1=2, src2=3):
    from repro.isa import fu_class

    return TraceInst(
        seq=seq,
        pc=seq * 4,
        opcode=opcode,
        fu=fu_class(opcode),
        dst=dst,
        src1=src1,
        src2=src2,
        src1_val=1,
        src2_val=2,
        result=3,
        mem_addr=None,
        taken=False,
        next_pc=seq * 4 + 4,
    )


class TestOpTiming:
    def test_defaults_single_cycle(self):
        assert op_latency(Opcode.ADD) == 1
        assert op_timing(Opcode.ADD).init_interval == 1

    def test_unpipelined_ops(self):
        div = op_timing(Opcode.DIV)
        assert div.latency == 20 and div.init_interval == 19
        fsqrt = op_timing(Opcode.FSQRT)
        assert fsqrt.init_interval == fsqrt.latency

    def test_pipelined_long_ops(self):
        assert op_timing(Opcode.FMUL).latency == 4
        assert op_timing(Opcode.FMUL).init_interval == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OpTiming(latency=0)
        with pytest.raises(ValueError):
            OpTiming(latency=2, init_interval=3)


class TestFUPool:
    def test_pipelined_unit_accepts_every_cycle(self):
        pool = FUPool({FUClass.INT_ALU: 1})
        timing = OpTiming(latency=1)
        assert pool.issue(FUClass.INT_ALU, 0, timing)
        assert not pool.issue(FUClass.INT_ALU, 0, timing)
        assert pool.issue(FUClass.INT_ALU, 1, timing)

    def test_n_units_give_n_slots_per_cycle(self):
        pool = FUPool({FUClass.INT_ALU: 4})
        timing = OpTiming(latency=1)
        issued = sum(pool.issue(FUClass.INT_ALU, 0, timing) for _ in range(6))
        assert issued == 4

    def test_unpipelined_blocks_for_interval(self):
        pool = FUPool({FUClass.FP_MULDIV: 1})
        timing = OpTiming(latency=12, init_interval=12)
        assert pool.issue(FUClass.FP_MULDIV, 0, timing)
        for cycle in range(1, 12):
            assert not pool.issue(FUClass.FP_MULDIV, cycle, timing)
        assert pool.issue(FUClass.FP_MULDIV, 12, timing)

    def test_absent_class_never_issues(self):
        pool = FUPool({FUClass.INT_ALU: 1})
        assert not pool.issue(FUClass.FP_ADD, 0, OpTiming(latency=1))
        assert not pool.can_issue(FUClass.FP_ADD, 0)

    def test_free_units_counting(self):
        pool = FUPool({FUClass.INT_ALU: 3})
        pool.issue(FUClass.INT_ALU, 0, OpTiming(latency=1))
        assert pool.free_units(FUClass.INT_ALU, 0) == 2


class TestMachineConfig:
    def test_baseline_matches_paper(self):
        config = MachineConfig.baseline()
        assert config.issue_width == 8
        assert config.ruu_size == 128 and config.lsq_size == 64
        assert (config.int_alu, config.int_muldiv, config.fp_add, config.fp_muldiv) == (
            4, 2, 2, 1,
        )

    def test_scaled_alu(self):
        config = MachineConfig.baseline().scaled(alu=2)
        assert config.int_alu == 8 and config.fp_muldiv == 2
        assert config.ruu_size == 128  # untouched

    def test_scaled_ruu(self):
        config = MachineConfig.baseline().scaled(ruu=2)
        assert config.ruu_size == 256 and config.lsq_size == 128

    def test_scaled_widths(self):
        config = MachineConfig.baseline().scaled(widths=2)
        assert config.fetch_width == config.commit_width == 16

    def test_scaled_combination(self):
        config = MachineConfig.baseline().scaled(alu=2, ruu=2, widths=2)
        assert (config.int_alu, config.ruu_size, config.issue_width) == (8, 256, 16)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError):
            MachineConfig.baseline().scaled(alu=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0)

    def test_fu_counts_exposed(self):
        counts = MachineConfig.baseline().fu_counts
        assert counts[FUClass.INT_ALU] == 4

    def test_describe_mentions_key_resources(self):
        text = MachineConfig.baseline().describe()
        assert "128 / 64" in text and "4/2/2/1" in text

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineConfig.baseline().issue_width = 4


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_mispredict_rate(self):
        stats = SimStats(branches=100, mispredicts=7)
        assert stats.mispredict_rate == pytest.approx(0.07)

    def test_irb_rates(self):
        stats = SimStats(irb_lookups=100, irb_pc_hits=80, irb_reuse_hits=30)
        assert stats.irb_pc_hit_rate == pytest.approx(0.8)
        assert stats.irb_reuse_rate == pytest.approx(0.3)

    def test_fu_utilization(self):
        stats = SimStats(cycles=100)
        stats.count_fu_issue(FUClass.INT_ALU, busy=2)
        assert stats.fu_utilization(FUClass.INT_ALU, 1) == pytest.approx(0.02)
        assert stats.fu_utilization(FUClass.FP_ADD, 2) == 0.0


class TestDynInst:
    def test_uid_interleaves_streams(self):
        primary = DynInst(make_trace_inst(seq=5), PRIMARY)
        duplicate = DynInst(make_trace_inst(seq=5), DUPLICATE)
        assert duplicate.uid == primary.uid + 1

    def test_output_for_alu_is_result(self):
        inst = DynInst(make_trace_inst(), PRIMARY)
        assert inst.output() == 3

    def test_output_for_mem_is_address(self):
        trace = make_trace_inst(opcode=Opcode.LOAD)
        trace.mem_addr = 0x42
        inst = DynInst(trace, DUPLICATE)
        inst.mem_addr = 0x42
        assert inst.output() == 0x42

    def test_fault_changes_output_not_trace(self):
        trace = make_trace_inst()
        inst = DynInst(trace, PRIMARY)
        inst.result = 99
        assert trace.result == 3
        assert inst.output() == 99
