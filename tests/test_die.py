"""Directed tests for Dual Instruction Execution (DIE)."""

import pytest

from repro.core import DUPLICATE, DynInst, MachineConfig, PRIMARY
from repro.isa import Opcode, int_reg
from repro.redundancy import CommitChecker, DIEPipeline, Fault, FaultInjector
from repro.redundancy.faults import EXEC_PRIMARY
from repro.simulation import simulate

from helpers import addi, straightline

R1, R2, R3 = int_reg(1), int_reg(2), int_reg(3)


def run_die(ops, count=None, **kwargs):
    trace = straightline(ops, count=count)
    return simulate(trace, "die", **kwargs)


class TestDuplication:
    def test_every_instruction_dispatches_twice(self):
        result = run_die([addi(R1, 0, i) for i in range(10)])
        assert result.stats.dispatched == 20
        assert result.stats.committed == 10
        assert result.stats.pairs_checked == 10

    def test_die_never_faster_than_sie(self, gzip_trace):
        sie = simulate(gzip_trace, "sie").stats.cycles
        die = simulate(gzip_trace, "die").stats.cycles
        assert die >= sie

    def test_pair_links_are_mutual(self):
        trace = straightline([addi(R1, 0, 1)])
        pipeline = DIEPipeline(trace)
        entries = pipeline._hook_make_entries(trace[0], False)
        primary, duplicate = entries
        assert primary.pair is duplicate and duplicate.pair is primary
        assert primary.stream == PRIMARY and duplicate.stream == DUPLICATE

    def test_duplicate_memory_ops_skip_the_cache(self):
        ops = [addi(R1, 0, 0x2000)] + [
            (Opcode.LOAD, int_reg(2 + i), R1, None, 8 * i) for i in range(4)
        ]
        trace = straightline(ops)
        sie = simulate(trace, "sie")
        die = simulate(trace, "die")
        # Memory is outside the SoR: the access count must not double.
        assert (
            die.pipeline.hier.l1d.stats.accesses
            == sie.pipeline.hier.l1d.stats.accesses
        )

    def test_duplicate_loads_do_not_take_lsq_slots(self):
        ops = [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0)]
        trace = straightline(ops)
        pipeline = DIEPipeline(trace)
        pipeline.warm_up()
        pipeline.run()
        assert pipeline.lsq_count == 0  # drained, never double-counted


class TestEffectiveProducer:
    def test_duplicate_consumer_waits_for_primary_load(self):
        """The single memory access feeds both streams' dataflow."""
        trace = straightline(
            [addi(R1, 0, 0x2000), (Opcode.LOAD, R2, R1, None, 0), (Opcode.ADD, R3, R2, R2, 0)]
        )
        pipeline = DIEPipeline(trace)
        load_primary = DynInst(trace[1], PRIMARY)
        load_duplicate = DynInst(trace[1], DUPLICATE)
        load_primary.pair = load_duplicate
        load_duplicate.pair = load_primary
        consumer_dup = DynInst(trace[2], DUPLICATE)
        resolved = pipeline._hook_effective_producer(consumer_dup, load_duplicate)
        assert resolved is load_primary

    def test_alu_producers_stay_in_stream(self):
        trace = straightline([addi(R1, 0, 1), (Opcode.ADD, R2, R1, R1, 0)])
        pipeline = DIEPipeline(trace)
        producer_dup = DynInst(trace[0], DUPLICATE)
        consumer_dup = DynInst(trace[1], DUPLICATE)
        assert (
            pipeline._hook_effective_producer(consumer_dup, producer_dup)
            is producer_dup
        )


class TestChecker:
    def test_matching_pair_passes(self):
        trace = straightline([addi(R1, 0, 5)])
        checker = CommitChecker()
        p, d = DynInst(trace[0], PRIMARY), DynInst(trace[0], DUPLICATE)
        assert checker.check(p, d)
        assert checker.stats.checked == 1 and checker.stats.mismatches == 0

    def test_corrupted_pair_fails(self):
        trace = straightline([addi(R1, 0, 5)])
        checker = CommitChecker()
        p, d = DynInst(trace[0], PRIMARY), DynInst(trace[0], DUPLICATE)
        d.result = 6
        assert not checker.check(p, d)
        assert checker.stats.mismatches == 1

    def test_mismatched_seq_is_a_bug(self):
        t = straightline([addi(R1, 0, 1), addi(R2, 0, 2)])
        checker = CommitChecker()
        with pytest.raises(ValueError):
            checker.check(DynInst(t[0], PRIMARY), DynInst(t[1], DUPLICATE))

    def test_mem_pairs_compare_addresses(self):
        trace = straightline([addi(R1, 0, 0x2000), (Opcode.STORE, None, R1, R1, 0)])
        checker = CommitChecker()
        p, d = DynInst(trace[1], PRIMARY), DynInst(trace[1], DUPLICATE)
        assert checker.check(p, d)
        d.mem_addr = 0x3000
        assert not checker.check(p, d)


class TestFaultRecovery:
    def test_exec_fault_detected_and_recovered(self):
        ops = [addi(int_reg(1 + (i % 8)), 0, i) for i in range(20)]
        trace = straightline(ops)
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=10)])
        result = simulate(trace, "die", fault_injector=injector)
        assert result.stats.check_mismatches == 1
        assert result.stats.recoveries == 1
        # Rewind re-executes: everything still commits exactly once.
        assert result.stats.committed == 20

    def test_recovery_costs_cycles(self):
        ops = [addi(int_reg(1 + (i % 8)), 0, i) for i in range(20)]
        trace = straightline(ops)
        clean = simulate(trace, "die").stats.cycles
        injector = FaultInjector([Fault(kind=EXEC_PRIMARY, seq=10)])
        faulty = simulate(trace, "die", fault_injector=injector).stats.cycles
        assert faulty > clean

    def test_fault_free_run_never_mismatches(self, gzip_trace):
        result = simulate(gzip_trace, "die")
        assert result.stats.check_mismatches == 0

    def test_die_respects_scaled_configs(self, gzip_trace):
        base = simulate(gzip_trace, "die").ipc
        doubled = simulate(
            gzip_trace, "die", config=MachineConfig.baseline().scaled(alu=2, ruu=2, widths=2)
        ).ipc
        assert doubled > base
