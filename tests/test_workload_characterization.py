"""Characterization tests: each profile must produce its calibrated class.

These lock in the workload taxonomy the evaluation depends on — if a
profile drifts out of its class (compute-bound / chain-bound /
window-bound), every figure built on it silently changes meaning.
"""

import pytest

from repro.isa import FUClass
from repro.simulation import get_trace, simulate

N = 10_000

COMPUTE_APPS = ("gzip", "gcc", "vortex", "bzip2", "twolf", "parser", "vpr")
MEMORY_APPS = ("mcf", "art")
CHAIN_APPS = ("ammp",)


@pytest.mark.parametrize("app", COMPUTE_APPS)
def test_compute_apps_have_healthy_ipc(app):
    result = simulate(get_trace(app, N), "sie")
    assert result.ipc > 1.0, f"{app} should be compute-class"


@pytest.mark.parametrize("app", MEMORY_APPS)
def test_memory_apps_are_slow_and_touch_dram(app):
    result = simulate(get_trace(app, N), "sie")
    assert result.ipc < 1.0
    assert result.pipeline.hier.dram.requests > 10


@pytest.mark.parametrize("app", CHAIN_APPS)
def test_chain_apps_idle_their_alus(app):
    result = simulate(get_trace(app, N), "sie")
    util = result.stats.fu_utilization(
        FUClass.INT_ALU, result.pipeline.config.int_alu
    )
    assert result.ipc < 1.2
    assert util < 0.5


@pytest.mark.parametrize("app", COMPUTE_APPS)
def test_compute_apps_cache_resident(app):
    result = simulate(get_trace(app, N), "sie")
    # A handful of cold far-heap touches allowed; no streaming.
    assert result.pipeline.hier.dram.requests < N // 100


def test_art_has_memory_level_parallelism():
    """art's misses must be independent (the window can overlap them) —
    that is what makes it the 2xRUU-responsive outlier."""
    from repro.core import MachineConfig

    trace = get_trace("art", N)
    small = simulate(
        trace,
        "sie",
        config=MachineConfig.baseline().scaled(ruu=1),
    ).ipc
    big = simulate(
        trace,
        "sie",
        config=MachineConfig.baseline().scaled(ruu=2),
    ).ipc
    assert big > small * 1.3


def test_mcf_is_latency_serialized():
    """mcf chases pointers: a bigger window must NOT buy much."""
    from repro.core import MachineConfig

    trace = get_trace("mcf", N)
    small = simulate(trace, "sie").ipc
    big = simulate(
        trace, "sie", config=MachineConfig.baseline().scaled(ruu=2)
    ).ipc
    assert big < small * 1.25


@pytest.mark.parametrize("app", ("gcc", "vortex"))
def test_reuse_rich_apps_have_big_static_footprints(app):
    trace = get_trace(app, N)
    assert trace.summary().unique_pcs > 500  # vs ~200-300 for loopy codes


@pytest.mark.parametrize(
    "app", COMPUTE_APPS + MEMORY_APPS + CHAIN_APPS + ("wupwise", "equake")
)
def test_all_profiles_show_consecutive_repetition(app):
    """Every app must offer the IRB something (even the memory-bound
    ones repeat operand values through their low-entropy data)."""
    trace = get_trace(app, N)
    assert trace.summary().value_repetition > 0.05
