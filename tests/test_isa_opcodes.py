"""Unit tests for opcode classification."""

import pytest

from repro.isa import (
    FUClass,
    Opcode,
    fu_class,
    is_branch,
    is_cond_branch,
    is_fp,
    is_load,
    is_mem,
    is_reusable,
    is_store,
    is_uncond_branch,
)


class TestFUClassification:
    def test_int_alu_ops_map_to_int_alu(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.SLT, Opcode.LUI):
            assert fu_class(op) is FUClass.INT_ALU

    def test_muldiv_ops(self):
        assert fu_class(Opcode.MUL) is FUClass.INT_MULDIV
        assert fu_class(Opcode.DIV) is FUClass.INT_MULDIV

    def test_fp_add_class(self):
        for op in (Opcode.FADD, Opcode.FSUB, Opcode.FCMP):
            assert fu_class(op) is FUClass.FP_ADD

    def test_fp_muldiv_class(self):
        for op in (Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT):
            assert fu_class(op) is FUClass.FP_MULDIV

    def test_memory_address_calc_uses_int_alu(self):
        # The paper treats ALU and functional unit synonymously because
        # address and target calculations run on the integer ALUs.
        for op in (Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE):
            assert fu_class(op) is FUClass.INT_ALU

    def test_branches_use_int_alu(self):
        for op in (Opcode.BEQ, Opcode.JUMP, Opcode.RET):
            assert fu_class(op) is FUClass.INT_ALU

    def test_nop_needs_no_unit(self):
        assert fu_class(Opcode.NOP) is FUClass.NONE

    def test_every_opcode_classifies(self):
        for op in Opcode:
            assert isinstance(fu_class(op), FUClass)


class TestPredicates:
    def test_mem_predicates(self):
        assert is_mem(Opcode.LOAD) and is_mem(Opcode.FSTORE)
        assert is_load(Opcode.FLOAD) and not is_load(Opcode.STORE)
        assert is_store(Opcode.STORE) and not is_store(Opcode.LOAD)
        assert not is_mem(Opcode.ADD)

    def test_branch_predicates(self):
        assert is_branch(Opcode.BEQ) and is_branch(Opcode.RET)
        assert is_cond_branch(Opcode.BLT) and not is_cond_branch(Opcode.JUMP)
        assert is_uncond_branch(Opcode.CALL) and not is_uncond_branch(Opcode.BNE)

    def test_cond_and_uncond_partition_branches(self):
        for op in Opcode:
            if is_branch(op):
                assert is_cond_branch(op) != is_uncond_branch(op)

    def test_fp_predicate(self):
        assert is_fp(Opcode.FADD) and is_fp(Opcode.FLOAD)
        assert not is_fp(Opcode.ADD) and not is_fp(Opcode.LOAD)

    def test_reusable_covers_everything_but_nop(self):
        # Section 3.2: IRB serves ALU ops, branch targets and mem address
        # calculation — every opcode except NOP carries reusable work.
        for op in Opcode:
            assert is_reusable(op) == (op is not Opcode.NOP)


class TestEnumStability:
    def test_opcode_values_are_unique(self):
        values = [op.value for op in Opcode]
        assert len(values) == len(set(values))

    def test_fu_class_values_are_unique(self):
        values = [fu.value for fu in FUClass]
        assert len(values) == len(set(values))

    @pytest.mark.parametrize("op", list(Opcode))
    def test_opcode_roundtrip(self, op):
        assert Opcode(op.value) is op
